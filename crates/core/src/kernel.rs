//! The concurrency-control kernel: the paper's object managers plus
//! transaction manager in one deterministic, synchronous state machine.
//!
//! The kernel implements:
//!
//! * the **Figure 2 algorithm** for executing operations — classify the
//!   request against every uncommitted operation, block behind
//!   non-recoverable holders (with deadlock detection), or execute with
//!   commit-dependency edges after checking that no dependency cycle is
//!   created;
//! * the **commit protocol of Section 4.3** — a transaction with outstanding
//!   commit dependencies *pseudo-commits*; when a transaction terminates,
//!   pseudo-committed transactions whose out-degree drops to zero actually
//!   commit (cascading through chains of dependencies);
//! * **recovery** (Section 4.4) via intentions lists or replay-based undo;
//! * **fair scheduling** (Section 5.2): an incoming request that conflicts
//!   with a blocked request waits behind it.
//!
//! The kernel is single-threaded by design (the simulator drives it
//! directly); [`crate::Database`] adds a thread-safe, blocking front-end.

use crate::errors::CoreError;
use crate::events::{
    AbortReason, BatchOutcome, BatchStop, CommitOutcome, KernelEvent, RequestOutcome,
};
use crate::history::HistoryRecorder;
use crate::object::{Classification, ManagedObject, ObjectId};
use crate::policy::{CycleDetector, SchedulerConfig, UndeclaredPolicy, VictimPolicy};
use crate::shard::GlobalGraph;
use crate::stats::KernelStats;
use crate::txn::{BatchCall, ExecutedOp, PendingRequest, TxnId, TxnRecord, TxnState};
use sbcc_adt::{AccessSet, AdtObject, AdtSpec, OpCall, OpResult, SemanticObject};
use sbcc_graph::{DependencyGraph, EdgeKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Compact record kept for a terminated transaction after its full
/// [`TxnRecord`] has been dropped (keeping the full record for every
/// transaction ever begun would grow without bound in long-running
/// workloads such as the simulation study).
#[derive(Debug, Clone, Copy)]
struct FinishedTxn {
    state: TxnState,
    executed_ops: usize,
    /// Durability ticket of the commit record this kernel appended to the
    /// write-ahead log, when a log is attached and the transaction had
    /// operations to log (the caller passes it to `Wal::wait_durable`
    /// after releasing the shard lock).
    wal_ticket: Option<u64>,
    /// Global commit stamp the transaction's effects were folded under
    /// (`None` for aborts).
    commit_stamp: Option<u64>,
}

/// The scheduler kernel. See the module documentation for an overview.
pub struct SchedulerKernel {
    config: SchedulerConfig,
    objects: Vec<ManagedObject>,
    object_names: HashMap<String, ObjectId>,
    txns: HashMap<TxnId, TxnRecord>,
    finished: HashMap<TxnId, FinishedTxn>,
    graph: DependencyGraph<TxnId>,
    next_txn_id: u64,
    next_seq: u64,
    next_commit_index: u64,
    stats: KernelStats,
    history: Option<HistoryRecorder>,
    events: Vec<KernelEvent>,
    pending_dirty: Vec<ObjectId>,
    /// Bumped whenever a transaction terminates (commit or abort) — i.e.
    /// whenever execution logs, blocked queues or the dependency graph may
    /// have changed *underneath* a caller. Used to (a) skip the settle scan
    /// when nothing terminated, and (b) invalidate the pre-computed group
    /// classification of an in-flight batch.
    termination_epoch: u64,
    /// The cross-shard escalation graph, when this kernel is one shard of a
    /// [`crate::shard::ShardedKernel`]. `None` for a standalone kernel.
    escalation: Option<Arc<GlobalGraph>>,
    /// `true` while this shard hosts (or recently hosted) a transaction
    /// that is also enrolled in another shard. While entangled, every
    /// local dependency-graph mutation is mirrored into the escalation
    /// graph and every cycle check that finds no local cycle additionally
    /// consults it. Reset when the shard quiesces (no live transactions).
    entangled: bool,
    /// Coordinated (multi-shard) pseudo-committed transactions whose
    /// **local** commit-dependency out-degree dropped to zero; drained by
    /// the cross-shard coordinator, which re-runs the commit vote across
    /// every shard the transaction is enrolled in.
    coordination_ready: Vec<TxnId>,
    /// The write-ahead log this kernel appends committed operations to,
    /// with the shard index it writes under. `None` when durability is
    /// off (the default) — every logging site is a no-op then.
    wal: Option<(Arc<sbcc_wal::Wal>, u32)>,
    /// The global commit-stamp clock: every actual commit draws the next
    /// stamp from it and folds its effects into the version store under
    /// that stamp. Shared across every shard of a [`crate::shard::ShardedKernel`]
    /// (see [`Self::attach_stamps`]); a standalone kernel owns its own.
    commit_clock: Arc<AtomicU64>,
    /// Begin stamp of the oldest live snapshot (`u64::MAX` when none):
    /// the multi-version GC watermark. Written by the snapshot lifecycle
    /// in the sharding layer, read (`SeqCst`) by every fold.
    version_floor: Arc<AtomicU64>,
}

impl std::fmt::Debug for SchedulerKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerKernel")
            .field("objects", &self.objects.len())
            .field("transactions", &self.txns.len())
            .field("policy", &self.config.policy)
            .finish()
    }
}

impl SchedulerKernel {
    /// Build a kernel with the given configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        let history = if config.record_history {
            Some(HistoryRecorder::new())
        } else {
            None
        };
        let mut graph = DependencyGraph::new();
        graph.set_reorder_strategy(config.reorder);
        SchedulerKernel {
            config,
            objects: Vec::new(),
            object_names: HashMap::new(),
            txns: HashMap::new(),
            finished: HashMap::new(),
            graph,
            next_txn_id: 0,
            next_seq: 0,
            next_commit_index: 0,
            stats: KernelStats::default(),
            history,
            events: Vec::new(),
            pending_dirty: Vec::new(),
            termination_epoch: 0,
            escalation: None,
            entangled: false,
            coordination_ready: Vec::new(),
            wal: None,
            commit_clock: Arc::new(AtomicU64::new(0)),
            version_floor: Arc::new(AtomicU64::new(u64::MAX)),
        }
    }

    /// Replace this kernel's commit-stamp clock and version-GC watermark
    /// with shared handles. Called once per shard at
    /// [`crate::shard::ShardedKernel`] construction (before any request), so
    /// all shards stamp their folds from one global commit sequence.
    pub fn attach_stamps(&mut self, clock: Arc<AtomicU64>, floor: Arc<AtomicU64>) {
        self.commit_clock = clock;
        self.version_floor = floor;
    }

    /// The current value of the commit-stamp clock (the stamp of the most
    /// recent actual commit).
    pub fn current_stamp(&self) -> u64 {
        self.commit_clock.load(Ordering::SeqCst)
    }

    /// Attach a write-ahead log: from here on, every actual commit of a
    /// transaction with operations appends a commit record under `shard`
    /// (unless the coordinator already logged it — see
    /// [`Self::mark_wal_logged`]). Attach **after** replaying recovered
    /// records, or replay would be re-logged.
    pub fn attach_wal(&mut self, wal: Arc<sbcc_wal::Wal>, shard: u32) {
        self.wal = Some((wal, shard));
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Raw counters.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Number of cycle-detection invocations so far (wait-for *and*
    /// commit-dependency checks combined, as in the paper's cycle check
    /// ratio).
    pub fn cycle_checks(&self) -> u64 {
        self.graph.cycle_checks()
    }

    /// Reorder telemetry of this kernel's dependency graph: topological-
    /// order violations seen, nodes relabeled repairing them, allocating
    /// slow paths and gap-exhaustion renumberings (see
    /// [`sbcc_graph::OrderTelemetry`]).
    pub fn reorder_telemetry(&self) -> sbcc_graph::OrderTelemetry {
        self.graph.order_telemetry()
    }

    /// The recorded history, when `record_history` is enabled.
    pub fn history(&self) -> Option<&HistoryRecorder> {
        self.history.as_ref()
    }

    // ------------------------------------------------------------------
    // Object registration and inspection
    // ------------------------------------------------------------------

    /// Register an erased semantic object under a unique name.
    pub fn register_object(
        &mut self,
        name: impl Into<String>,
        object: Box<dyn SemanticObject>,
    ) -> Result<ObjectId, CoreError> {
        let name = name.into();
        if self.object_names.contains_key(&name) {
            return Err(CoreError::DuplicateObject(name));
        }
        let id = ObjectId(self.objects.len() as u32);
        self.objects
            .push(ManagedObject::new(id, name.clone(), object, self.config.recovery));
        self.object_names.insert(name, id);
        Ok(id)
    }

    /// Register a typed atomic data type instance under a unique name.
    pub fn register<A: AdtSpec>(
        &mut self,
        name: impl Into<String>,
        adt: A,
    ) -> Result<ObjectId, CoreError> {
        self.register_object(name, Box::new(AdtObject::new(adt)))
    }

    /// Number of registered objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// All object ids, in registration order.
    pub fn object_ids(&self) -> Vec<ObjectId> {
        (0..self.objects.len() as u32).map(ObjectId).collect()
    }

    /// Resolve an object name.
    pub fn object_id(&self, name: &str) -> Option<ObjectId> {
        self.object_names.get(name).copied()
    }

    /// The registration name of an object.
    pub fn object_name(&self, id: ObjectId) -> Option<&str> {
        self.objects.get(id.0 as usize).map(|o| o.name())
    }

    /// The object state reflecting exactly the committed transactions.
    pub fn object_committed_state(&self, id: ObjectId) -> Option<&dyn SemanticObject> {
        self.objects.get(id.0 as usize).map(|o| o.committed_state())
    }

    /// The object state as registered.
    pub fn object_initial_state(&self, id: ObjectId) -> Option<&dyn SemanticObject> {
        self.objects.get(id.0 as usize).map(|o| o.initial_state())
    }

    /// Number of uncommitted operations currently logged on an object.
    pub fn object_log_len(&self, id: ObjectId) -> usize {
        self.objects.get(id.0 as usize).map(|o| o.log_len()).unwrap_or(0)
    }

    /// Number of blocked requests queued on an object.
    pub fn object_blocked_len(&self, id: ObjectId) -> usize {
        self.objects
            .get(id.0 as usize)
            .map(|o| o.blocked_len())
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Transaction life cycle
    // ------------------------------------------------------------------

    /// Begin a new transaction.
    pub fn begin(&mut self) -> TxnId {
        self.next_txn_id += 1;
        let id = TxnId(self.next_txn_id);
        self.txns.insert(id, TxnRecord::new(id));
        self.graph.add_node(id);
        self.stats.transactions_begun += 1;
        if let Some(h) = &mut self.history {
            h.record_begin(id);
        }
        id
    }

    // ------------------------------------------------------------------
    // Sharding hooks (see `crate::shard`)
    //
    // A `ShardedKernel` runs N of these kernels side by side, each owning a
    // disjoint set of objects. Transaction ids are then assigned by the
    // coordinator and *adopted* into a shard on first touch; terminations
    // of multi-shard transactions are applied by the coordinator through
    // the `*_coordinated` methods. A standalone kernel never uses any of
    // this.
    // ------------------------------------------------------------------

    /// Attach the cross-shard escalation graph. Called once per shard at
    /// [`crate::shard::ShardedKernel`] construction, before any request.
    pub fn attach_escalation(&mut self, global: Arc<GlobalGraph>) {
        self.escalation = Some(global);
    }

    /// Mark this shard entangled: from now on (until the shard quiesces)
    /// every local dependency edge is mirrored into the escalation graph,
    /// starting with a bulk upload of the edges that already exist.
    pub fn entangle(&mut self) {
        if self.entangled {
            return;
        }
        self.entangled = true;
        if let Some(global) = self.escalation.clone() {
            let escalated = global.mirror_all(&self.graph);
            self.stats.escalated_edges += escalated;
        }
    }

    /// `true` while the shard mirrors its graph into the escalation graph.
    pub fn is_entangled(&self) -> bool {
        self.entangled
    }

    /// Adopt an externally assigned transaction id (cross-shard enrollment:
    /// the coordinator begot the transaction; this shard sees it for the
    /// first time). `coordinated` marks it as enrolled in more than one
    /// shard from the start.
    ///
    /// # Panics
    ///
    /// Panics if the id is already known to this kernel — the coordinator
    /// enrolls each transaction into a shard at most once.
    pub fn adopt(&mut self, id: TxnId, coordinated: bool) {
        assert!(
            !self.txns.contains_key(&id) && !self.finished.contains_key(&id),
            "transaction {id} already enrolled in this shard"
        );
        let mut rec = TxnRecord::new(id);
        rec.coordinated = coordinated;
        self.txns.insert(id, rec);
        self.graph.add_node(id);
        self.next_txn_id = self.next_txn_id.max(id.0);
        self.stats.transactions_begun += 1;
        if let Some(h) = &mut self.history {
            h.record_begin(id);
        }
    }

    /// Promote a live transaction to coordinated (it just enrolled in a
    /// second shard).
    pub fn mark_coordinated(&mut self, txn: TxnId) {
        if let Some(rec) = self.txns.get_mut(&txn) {
            rec.coordinated = true;
        }
    }

    /// Record a coordinator-decided pseudo-commit of a coordinated
    /// transaction (its commit-dependency union across shards was
    /// non-empty). Unlike [`Self::commit`] this performs no local dependency
    /// check — the coordinator saw the union. Returns `false` if the
    /// transaction is not live and active in this shard.
    pub fn pseudo_commit_coordinated(&mut self, txn: TxnId) -> bool {
        match self.txns.get_mut(&txn) {
            Some(rec) if rec.state == TxnState::Active => {
                debug_assert!(rec.coordinated, "only coordinated transactions");
                rec.state = TxnState::PseudoCommitted;
                self.stats.pseudo_commits += 1;
                if let Some(h) = &mut self.history {
                    h.record_pseudo_commit(txn);
                }
                // The coordinator collected this shard's dependencies in an
                // earlier vote pass; the last of them may have terminated in
                // the window since. `settle` re-runs the zero-out-degree scan
                // so a pseudo-commit that *starts* dependency-free is queued
                // for its re-vote immediately — otherwise no future edge
                // removal would ever report it and the transaction would
                // stay pseudo-committed forever (found by DST seed replay).
                self.settle();
                true
            }
            _ => false,
        }
    }

    /// Apply the local share of a coordinator-decided **actual commit** of
    /// a coordinated transaction: fold its operations into this shard's
    /// committed states, drop its graph node and settle. The coordinator
    /// only calls this once the transaction's commit-dependency out-degree
    /// is zero in *every* shard it is enrolled in.
    /// `stamp` is the global commit stamp the coordinator drew (under the
    /// termination lock) for the whole multi-shard transaction, so every
    /// shard's version store records the commit under one stamp and a
    /// cross-shard snapshot can never observe it half-applied.
    pub fn commit_coordinated(&mut self, txn: TxnId, stamp: u64) {
        self.coordination_ready.retain(|t| *t != txn);
        debug_assert!(
            self.graph.out_neighbors_kind(txn, EdgeKind::CommitDep).is_empty(),
            "coordinated commit of {txn} with local commit dependencies outstanding"
        );
        self.actually_commit_stamped(txn, Some(stamp));
        self.settle();
    }

    /// Apply the local share of a coordinator-driven **abort** of a
    /// coordinated transaction (the shard where the abort originated has
    /// already aborted it locally). Returns `false` when the transaction is
    /// not live here (already applied, or never blocked/active) — callers
    /// treat that as an idempotent no-op.
    pub fn abort_coordinated(&mut self, txn: TxnId, reason: AbortReason) -> bool {
        match self.txns.get(&txn) {
            Some(rec) if matches!(rec.state, TxnState::Active | TxnState::Blocked) => {
                self.abort_internal(txn, reason);
                self.settle();
                true
            }
            _ => false,
        }
    }

    /// Drain the coordinated pseudo-committed transactions whose local
    /// commit-dependency out-degree dropped to zero since the last drain
    /// (a cross-shard commit vote should be re-run for each).
    pub fn drain_coordination_ready(&mut self) -> Vec<TxnId> {
        std::mem::take(&mut self.coordination_ready)
    }

    /// The current state of a transaction.
    pub fn txn_state(&self, txn: TxnId) -> Option<TxnState> {
        self.txns
            .get(&txn)
            .map(|r| r.state)
            .or_else(|| self.finished.get(&txn).map(|f| f.state))
    }

    /// Transactions that are still live (active, blocked or
    /// pseudo-committed).
    pub fn live_transactions(&self) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self
            .txns
            .values()
            .filter(|r| r.state.is_live())
            .map(|r| r.id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of operations a transaction executed (still available after it
    /// terminated).
    pub fn executed_ops_of(&self, txn: TxnId) -> usize {
        self.txns
            .get(&txn)
            .map(|r| r.executed_ops())
            .or_else(|| self.finished.get(&txn).map(|f| f.executed_ops))
            .unwrap_or(0)
    }

    /// The operations a *live* transaction has executed so far. Terminated
    /// transactions return an empty list (their detailed records are
    /// dropped; enable history recording to keep full per-operation data).
    pub fn ops_of(&self, txn: TxnId) -> Vec<ExecutedOp> {
        self.txns.get(&txn).map(|r| r.ops.clone()).unwrap_or_default()
    }

    /// The write-ahead-log payload of a *live* transaction: its executed
    /// operations with object names resolved, in execution order. Used by
    /// the cross-shard coordinator to log a multi-shard commit before
    /// applying it in-memory.
    pub fn wal_payload(&self, txn: TxnId) -> Vec<sbcc_wal::LoggedOp> {
        let Some(rec) = self.txns.get(&txn) else {
            return Vec::new();
        };
        rec.ops
            .iter()
            .map(|op| sbcc_wal::LoggedOp {
                object: self.objects[op.object.0 as usize].name().to_owned(),
                call: op.call.clone(),
                result: op.result.clone(),
            })
            .collect()
    }

    /// Record that the coordinator has already appended this transaction's
    /// operations to the write-ahead log, so the local commit path must
    /// not log it a second time.
    pub fn mark_wal_logged(&mut self, txn: TxnId) {
        if let Some(rec) = self.txns.get_mut(&txn) {
            rec.wal_logged = true;
        }
    }

    /// The durability ticket of a committed transaction's log record, when
    /// a write-ahead log is attached and this kernel appended one.
    pub fn wal_ticket_of(&self, txn: TxnId) -> Option<u64> {
        self.finished.get(&txn).and_then(|f| f.wal_ticket)
    }

    /// The live transactions `txn` currently has commit dependencies on.
    pub fn commit_dependencies_of(&self, txn: TxnId) -> Vec<TxnId> {
        let mut deps = self.graph.out_neighbors_kind(txn, EdgeKind::CommitDep);
        deps.sort_unstable();
        deps
    }

    /// The live transactions `txn` is currently waiting on (wait-for edges).
    pub fn waiting_on(&self, txn: TxnId) -> Vec<TxnId> {
        let mut deps = self.graph.out_neighbors_kind(txn, EdgeKind::WaitFor);
        deps.sort_unstable();
        deps
    }

    /// Drain the queued side-effect events (unblocks, cascaded commits,
    /// victim aborts) produced since the last drain.
    pub fn drain_events(&mut self) -> Vec<KernelEvent> {
        std::mem::take(&mut self.events)
    }

    /// Request execution of an operation on behalf of a transaction.
    pub fn request(
        &mut self,
        txn: TxnId,
        object: ObjectId,
        call: OpCall,
    ) -> Result<RequestOutcome, CoreError> {
        self.ensure_object(object)?;
        let state = self
            .txn_state(txn)
            .ok_or(CoreError::UnknownTransaction(txn))?;
        if state != TxnState::Active {
            return Err(CoreError::InvalidState {
                txn,
                state,
                action: "request an operation",
            });
        }
        self.stats.requests += 1;
        let epoch = self.termination_epoch;
        let outcome = self.process_request(txn, object, call, false, None);
        self.settle_if_terminated(epoch);
        Ok(outcome)
    }

    /// Request execution of a whole **group** of operations on behalf of a
    /// transaction, classified against the `(transaction, kind,
    /// parameter-relation)` log index in **one pass** per touched object
    /// (see [`ManagedObject::classify_many`]) instead of one pass per call.
    ///
    /// Admission is strictly in submission order and behaviourally
    /// equivalent to submitting the same calls one by one through
    /// [`Self::request`]; see [`BatchOutcome`] for the partial-admission
    /// semantics (executed prefix, blocking/aborting terminator, returned
    /// suffix). Every counter in [`KernelStats`] advances exactly as it
    /// would under per-call submission (plus the `batches`/`batched_calls`
    /// bookkeeping), which is what the differential test suite asserts.
    ///
    /// The pre-computed group classification is invalidated — and redone in
    /// a fresh single pass over the remaining calls — whenever a
    /// transaction terminates mid-batch (a victim abort or a cascaded
    /// commit changes the logs the classification was computed against).
    pub fn request_batch(
        &mut self,
        txn: TxnId,
        calls: Vec<BatchCall>,
    ) -> Result<BatchOutcome, CoreError> {
        // Fail-fast validation: a malformed batch is rejected before any of
        // its calls executes (per-call submission would execute the prefix
        // first; rejecting the group whole is the one place the two modes
        // deliberately differ, and only for programming errors).
        for bc in &calls {
            self.ensure_object(bc.object)?;
        }
        let state = self
            .txn_state(txn)
            .ok_or(CoreError::UnknownTransaction(txn))?;
        if state != TxnState::Active {
            return Err(CoreError::InvalidState {
                txn,
                state,
                action: "submit a batch",
            });
        }
        self.stats.batches += 1;

        let mut calls = calls;
        let mut executed: Vec<OpResult> = Vec::with_capacity(calls.len());
        let mut all_deps: Vec<TxnId> = Vec::new();
        let mut plan_epoch = self.termination_epoch;
        let mut plans = self.plan_batch(txn, &calls);
        let mut plan_pos = 0usize;
        for index in 0..calls.len() {
            self.stats.requests += 1;
            self.stats.batched_calls += 1;
            if self.termination_epoch != plan_epoch {
                // A transaction terminated since the plan was computed
                // (victim abort, cascaded commit, or a retried request of
                // another transaction executing): the logs changed, so the
                // remaining classifications are stale. Re-plan the suffix
                // in one fresh pass, in place — no payload clones.
                plan_epoch = self.termination_epoch;
                plans = self.plan_batch(txn, &calls[index..]);
                plan_pos = 0;
            }
            let precomputed = plans.get_mut(plan_pos).map(std::mem::take);
            plan_pos += 1;
            let object = calls[index].object;
            // Take the payload out of the prefix slot (never read again);
            // `rest` below only ever covers the untouched suffix.
            let call = std::mem::replace(&mut calls[index].call, OpCall::nullary(0));
            let epoch = self.termination_epoch;
            let outcome = self.process_request(txn, object, call, false, precomputed);
            self.settle_if_terminated(epoch);
            match outcome {
                RequestOutcome::Executed {
                    result,
                    commit_deps,
                } => {
                    executed.push(result);
                    all_deps.extend(commit_deps);
                }
                RequestOutcome::Blocked { waiting_on } => {
                    all_deps.sort_unstable();
                    all_deps.dedup();
                    return Ok(BatchOutcome {
                        executed,
                        commit_deps: all_deps,
                        stopped: Some(BatchStop::Blocked {
                            index,
                            waiting_on,
                            rest: calls.split_off(index + 1),
                        }),
                    });
                }
                RequestOutcome::Aborted { reason } => {
                    // The prefix results are returned exactly as per-call
                    // submission would already have returned them — but the
                    // abort has undone their effects, so they are void.
                    all_deps.sort_unstable();
                    all_deps.dedup();
                    return Ok(BatchOutcome {
                        executed,
                        commit_deps: all_deps,
                        stopped: Some(BatchStop::Aborted {
                            index,
                            reason,
                            rest: calls.split_off(index + 1),
                        }),
                    });
                }
            }
        }
        all_deps.sort_unstable();
        all_deps.dedup();
        Ok(BatchOutcome {
            executed,
            commit_deps: all_deps,
            stopped: None,
        })
    }

    /// Request a group of operations whose read/write footprint the caller
    /// has **declared** up front (Block-STM style; see
    /// [`sbcc_adt::AccessSet`]).
    ///
    /// The declaration is a promise, never a proof — the kernel checks it
    /// in two passes before trusting anything:
    ///
    /// 1. **Coverage**: every call must target a declared object, and a
    ///    call on a read-declared object must be a pure observer
    ///    (`is_readonly`). The first violation is a mis-declaration;
    ///    depending on [`UndeclaredPolicy`] the batch either *escalates*
    ///    to the per-op classifier ([`Self::request_batch`], declaration
    ///    discarded) or the transaction aborts with
    ///    [`AbortReason::UndeclaredAccess`].
    /// 2. **Disjointness**: every declared object must be quiescent — no
    ///    uncommitted operations of *other* live transactions and no
    ///    blocked requests queued. When any declared object is busy the
    ///    batch *falls back* to the classifier (a correct declaration,
    ///    just not a disjoint one — the classifier may still admit it via
    ///    recoverability).
    ///
    /// Only when both pass does the fast path fire: the whole group is
    /// admitted in that single footprint scan and executed with **zero
    /// per-op classification**, no graph edges and no cycle checks. This
    /// is behaviourally identical to the classified path on the same
    /// state — a quiescent footprint classifies every call as
    /// conflict-free and dependency-free (an equivalence the
    /// declared-vs-classified differential suite pins down) — it just
    /// skips computing that answer per call.
    ///
    /// Both checks and the executions happen atomically under the
    /// caller's exclusive access (`&mut self`; one shard-lock hold in the
    /// sharded database), so the admitted group cannot interleave with
    /// anything.
    pub fn request_batch_declared(
        &mut self,
        txn: TxnId,
        calls: Vec<BatchCall>,
        declared: &AccessSet<ObjectId>,
    ) -> Result<BatchOutcome, CoreError> {
        for bc in &calls {
            self.ensure_object(bc.object)?;
        }
        for obj in declared.objects() {
            self.ensure_object(*obj)?;
        }
        let state = self
            .txn_state(txn)
            .ok_or(CoreError::UnknownTransaction(txn))?;
        if state != TxnState::Active {
            return Err(CoreError::InvalidState {
                txn,
                state,
                action: "submit a batch",
            });
        }
        self.stats.declared_batches += 1;

        // Pass 1: coverage. A write declaration admits any call; a read
        // declaration only admits pure observers of the data type.
        let violation = calls.iter().position(|bc| {
            !(declared.covers_write(&bc.object)
                || (declared.covers_read(&bc.object)
                    && self
                        .object_ref(bc.object)
                        .committed_state()
                        .is_readonly(&bc.call)))
        });
        if let Some(index) = violation {
            return match self.config.undeclared {
                UndeclaredPolicy::Escalate => {
                    self.stats.declared_escalations += 1;
                    self.request_batch(txn, calls)
                }
                UndeclaredPolicy::Abort => {
                    let mut calls = calls;
                    let rest = calls.split_off(index + 1);
                    self.abort_internal(txn, AbortReason::UndeclaredAccess);
                    self.settle();
                    Ok(BatchOutcome {
                        executed: Vec::new(),
                        commit_deps: Vec::new(),
                        stopped: Some(BatchStop::Aborted {
                            index,
                            reason: AbortReason::UndeclaredAccess,
                            rest,
                        }),
                    })
                }
            };
        }

        // Pass 2: disjointness of the declared footprint from every live
        // transaction. The transaction's own earlier operations do not
        // disqualify an object — classification ignores them too.
        let disjoint = declared.objects().all(|obj| {
            let o = self.object_ref(*obj);
            o.blocked_len() == 0 && !o.log().iter().any(|e| e.txn != txn)
        });
        if !disjoint {
            self.stats.declared_fallbacks += 1;
            return self.request_batch(txn, calls);
        }

        // Fast path: group admission. Counters advance exactly as the
        // classified path would on this (conflict-free) state, so the two
        // modes stay stat-comparable.
        self.stats.declared_admitted += 1;
        self.stats.batches += 1;
        let mut executed: Vec<OpResult> = Vec::with_capacity(calls.len());
        for bc in calls {
            self.stats.requests += 1;
            self.stats.batched_calls += 1;
            executed.push(self.execute_op(txn, bc.object, bc.call));
        }
        let rec = self.txns.get_mut(&txn).expect("checked above");
        match &mut rec.declared {
            Some(union) => {
                for r in declared.reads() {
                    union.declare_read(*r);
                }
                for w in declared.writes() {
                    union.declare_write(*w);
                }
            }
            none => *none = Some(declared.clone()),
        }
        Ok(BatchOutcome {
            executed,
            commit_deps: Vec::new(),
            stopped: None,
        })
    }

    /// Request an operation using a typed operation value.
    pub fn request_op<O: sbcc_adt::AdtOp>(
        &mut self,
        txn: TxnId,
        object: ObjectId,
        op: &O,
    ) -> Result<RequestOutcome, CoreError> {
        self.request(txn, object, op.to_call())
    }

    /// Commit a transaction. Depending on outstanding commit dependencies
    /// this is an actual commit or a pseudo-commit.
    pub fn commit(&mut self, txn: TxnId) -> Result<CommitOutcome, CoreError> {
        let state = self
            .txn_state(txn)
            .ok_or(CoreError::UnknownTransaction(txn))?;
        if state != TxnState::Active {
            return Err(CoreError::InvalidState {
                txn,
                state,
                action: "commit",
            });
        }
        debug_assert!(
            !self.txns.get(&txn).map(|r| r.coordinated).unwrap_or(false),
            "multi-shard transactions commit through the coordinator, not Self::commit"
        );
        let mut deps = self.graph.out_neighbors_kind(txn, EdgeKind::CommitDep);
        deps.sort_unstable();
        if deps.is_empty() {
            self.actually_commit(txn);
            self.settle();
            Ok(CommitOutcome::Committed)
        } else {
            let rec = self.txns.get_mut(&txn).expect("checked above");
            rec.state = TxnState::PseudoCommitted;
            self.stats.pseudo_commits += 1;
            if let Some(h) = &mut self.history {
                h.record_pseudo_commit(txn);
            }
            Ok(CommitOutcome::PseudoCommitted { waiting_on: deps })
        }
    }

    /// Explicitly abort an active or blocked transaction.
    ///
    /// A pseudo-committed transaction cannot be aborted — by construction it
    /// will definitely commit.
    pub fn abort(&mut self, txn: TxnId) -> Result<(), CoreError> {
        self.abort_with(txn, AbortReason::Explicit)
    }

    /// Abort an active or blocked transaction for the given reason (the
    /// SSI guard uses this with [`AbortReason::SsiConflict`]; the event and
    /// error plumbing is identical to an explicit abort).
    pub fn abort_with(&mut self, txn: TxnId, reason: AbortReason) -> Result<(), CoreError> {
        let state = self
            .txn_state(txn)
            .ok_or(CoreError::UnknownTransaction(txn))?;
        if !matches!(state, TxnState::Active | TxnState::Blocked) {
            return Err(CoreError::InvalidState {
                txn,
                state,
                action: "abort",
            });
        }
        self.abort_internal(txn, reason);
        self.settle();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Multi-version snapshot reads (see `crate::shard` for the SSI guard)
    // ------------------------------------------------------------------

    /// Answer a read from the multi-version store: the result of `call`
    /// against the committed version current at begin stamp `stamp`.
    ///
    /// Returns `None` — caller falls back to the classified path — when the
    /// call is not a pure observer of the object's data type, or when `txn`
    /// itself holds uncommitted operations on the object (its own writes
    /// are only visible through the classified intentions view).
    pub fn snapshot_read(
        &mut self,
        txn: TxnId,
        object: ObjectId,
        stamp: u64,
        call: &OpCall,
    ) -> Result<Option<OpResult>, CoreError> {
        self.ensure_object(object)?;
        let obj = &mut self.objects[object.0 as usize];
        if !obj.committed_state().is_readonly(call) || obj.has_ops_of(txn) {
            return Ok(None);
        }
        let result = obj.read_at(stamp, call);
        self.stats.snapshot_reads += 1;
        Ok(Some(result))
    }

    /// Stamp of the last commit that folded operations into `object`
    /// (0 before any commit). Used by the SSI guard: a classified read by a
    /// snapshot transaction observing `committed_stamp > begin` has an
    /// incoming rw-antidependency from the committing writer.
    pub fn object_commit_stamp(&self, object: ObjectId) -> Option<u64> {
        self.objects.get(object.0 as usize).map(|o| o.committed_stamp())
    }

    /// Number of historical versions retained across all objects.
    pub fn version_depth(&self) -> usize {
        self.objects.iter().map(|o| o.version_depth()).sum()
    }

    /// Drop every historical version unreachable from `watermark` (the
    /// begin stamp of the oldest live snapshot; `u64::MAX` when none),
    /// returning how many were pruned. The commit path prunes lazily
    /// per-object; this is the sweep the snapshot lifecycle runs when the
    /// watermark rises.
    pub fn prune_versions(&mut self, watermark: u64) -> u64 {
        let mut pruned = 0;
        for obj in &mut self.objects {
            pruned += obj.prune_versions(watermark);
        }
        self.stats.versions_pruned += pruned;
        pruned
    }

    /// The objects a live transaction has executed at least one
    /// **mutating** (non-readonly) operation on, sorted. This is the write
    /// set the SSI guard scans SIREAD marks against at commit entry.
    pub fn write_set(&self, txn: TxnId) -> Vec<ObjectId> {
        let Some(rec) = self.txns.get(&txn) else {
            return Vec::new();
        };
        let mut out: Vec<ObjectId> = rec
            .ops
            .iter()
            .filter(|op| {
                !self.objects[op.object.0 as usize]
                    .committed_state()
                    .is_readonly(&op.call)
            })
            .map(|op| op.object)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The global commit stamp of a committed transaction (`None` while
    /// live, or for aborts).
    pub fn commit_stamp_of(&self, txn: TxnId) -> Option<u64> {
        self.finished.get(&txn).and_then(|f| f.commit_stamp)
    }

    // ------------------------------------------------------------------
    // Invariant checking (used by tests)
    // ------------------------------------------------------------------

    /// Check internal invariants; returns a description of the first
    /// violation found.
    pub fn check_invariants(&mut self) -> Result<(), String> {
        if self.graph.has_cycle() {
            return Err("dependency graph contains a cycle".to_owned());
        }
        for node in self.graph.nodes().collect::<Vec<_>>() {
            match self.txns.get(&node) {
                Some(r) if r.state.is_live() => {}
                Some(r) => {
                    return Err(format!(
                        "terminated transaction {node} (state {}) still has a graph node",
                        r.state
                    ))
                }
                None => return Err(format!("graph node {node} has no transaction record")),
            }
        }
        for obj in &self.objects {
            for entry in obj.log() {
                match self.txns.get(&entry.txn) {
                    Some(r) if r.state.is_live() => {}
                    _ => {
                        return Err(format!(
                            "object {} holds a log entry for non-live transaction {}",
                            obj.name(),
                            entry.txn
                        ))
                    }
                }
            }
            for blocked in obj.blocked_queue() {
                match self.txns.get(&blocked.txn) {
                    Some(r) if r.state == TxnState::Blocked => {}
                    _ => {
                        return Err(format!(
                            "object {} queues a blocked request for a transaction that is not blocked ({})",
                            obj.name(),
                            blocked.txn
                        ))
                    }
                }
            }
        }
        for rec in self.txns.values() {
            if rec.state == TxnState::Blocked && rec.pending.is_none() {
                return Err(format!("blocked transaction {} has no pending request", rec.id));
            }
            if rec.state != TxnState::Blocked && rec.pending.is_some() {
                return Err(format!(
                    "transaction {} has a pending request but is {}",
                    rec.id, rec.state
                ));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Add a dependency edge to the local graph, mirroring it into the
    /// escalation graph while entangled.
    fn graph_add_edge(&mut self, from: TxnId, to: TxnId, kind: EdgeKind) {
        self.graph.add_edge(from, to, kind);
        self.stats.graph_edges += 1;
        if self.entangled {
            if let Some(global) = &self.escalation {
                global.add_edge(from, to, kind);
            }
            self.stats.escalated_edges += 1;
        }
    }

    /// Remove a node (transaction termination) from the local graph and,
    /// while entangled, from the escalation graph.
    fn graph_remove_node(&mut self, txn: TxnId) {
        self.graph.remove_node(txn);
        if self.entangled {
            if let Some(global) = &self.escalation {
                global.remove_node(txn);
            }
            // Quiesce: once no live transaction remains, every node this
            // shard ever mirrored has been removed from the escalation
            // graph, so the shard can return to the lock-free local-only
            // fast path.
            if self.txns.is_empty() {
                self.entangled = false;
            }
        }
    }

    /// Clear a transaction's outgoing wait-for edges (blocked-request
    /// retry), mirrored while entangled.
    fn graph_clear_wait_edges(&mut self, txn: TxnId) {
        self.graph.clear_out_edges(txn, EdgeKind::WaitFor);
        if self.entangled {
            if let Some(global) = &self.escalation {
                global.clear_out_edges(txn, EdgeKind::WaitFor);
            }
        }
    }

    fn ensure_object(&self, object: ObjectId) -> Result<(), CoreError> {
        if (object.0 as usize) < self.objects.len() {
            Ok(())
        } else {
            Err(CoreError::UnknownObject(format!("{object}")))
        }
    }

    fn object_mut(&mut self, object: ObjectId) -> &mut ManagedObject {
        &mut self.objects[object.0 as usize]
    }

    fn object_ref(&self, object: ObjectId) -> &ManagedObject {
        &self.objects[object.0 as usize]
    }

    /// Compute the classification of every call of a batch in one pass over
    /// each touched object's log index (and fairness set), in submission
    /// order. Sound because nothing observable by the classification can
    /// change between the pass and the calls' admission other than the
    /// batch transaction's own executions (which classification ignores) —
    /// terminations, the one exception, bump [`Self::termination_epoch`]
    /// and force a re-plan.
    fn plan_batch(&self, txn: TxnId, calls: &[BatchCall]) -> Vec<Classification> {
        // Fast path for the common batch shape (the ROADMAP's motivating
        // case): every call targets the same object — classify the group
        // directly, skipping the per-object scatter machinery.
        if let [first, rest @ ..] = calls {
            if rest.iter().all(|bc| bc.object == first.object) {
                let group: Vec<&OpCall> = calls.iter().map(|bc| &bc.call).collect();
                let obj = self.object_ref(first.object);
                let fairness = if self.config.fair_scheduling {
                    obj.blocked_pairs()
                } else {
                    Vec::new()
                };
                return obj.classify_many(self.config.policy, txn, &group, &fairness);
            }
        }
        let mut plans: Vec<Option<Classification>> = vec![None; calls.len()];
        let mut objects: Vec<ObjectId> = calls.iter().map(|bc| bc.object).collect();
        objects.sort_unstable();
        objects.dedup();
        for object in objects {
            let members: Vec<usize> = (0..calls.len())
                .filter(|i| calls[*i].object == object)
                .collect();
            let group: Vec<&OpCall> = members.iter().map(|i| &calls[*i].call).collect();
            let obj = self.object_ref(object);
            let fairness = if self.config.fair_scheduling {
                obj.blocked_pairs()
            } else {
                Vec::new()
            };
            let classified = obj.classify_many(self.config.policy, txn, &group, &fairness);
            for (i, c) in members.into_iter().zip(classified) {
                plans[i] = Some(c);
            }
        }
        plans
            .into_iter()
            .map(|p| p.expect("every call planned"))
            .collect()
    }

    /// Run [`Self::settle`] only if a transaction terminated since `epoch`
    /// was sampled. When nothing terminated, settle is a pure no-op scan
    /// (no pseudo-commit can have lost its last dependency, no object log
    /// changed), so skipping it is behaviour-preserving — and saves an
    /// O(live transactions) walk on every admitted request.
    fn settle_if_terminated(&mut self, epoch: u64) {
        if self.termination_epoch != epoch || !self.pending_dirty.is_empty() {
            self.settle();
        }
    }

    /// The Figure-2 algorithm for a single request. `is_retry` marks
    /// automatic retries of previously blocked requests (they do not count
    /// as new blocking events in the statistics). `precomputed` supplies a
    /// still-valid classification from a batch plan for the first loop
    /// iteration (victim-abort iterations always re-classify).
    fn process_request(
        &mut self,
        txn: TxnId,
        object: ObjectId,
        call: OpCall,
        is_retry: bool,
        mut precomputed: Option<Classification>,
    ) -> RequestOutcome {
        loop {
            // A supplied plan is trusted as-is: the batched-vs-sequential
            // differential suite proves plans match fresh classifications.
            let classification = precomputed
                .take()
                .unwrap_or_else(|| self.classify_for(txn, object, &call));
            let Classification {
                conflicts,
                commit_deps,
            } = classification;

            if !conflicts.is_empty() {
                // Step 1: the request conflicts; it must wait unless waiting
                // would close a cycle.
                if self.cycle_would_close(txn, &conflicts, EdgeKind::WaitFor) {
                    match self.select_victim(txn, &conflicts) {
                        victim if victim == txn => {
                            self.abort_internal(txn, AbortReason::DeadlockCycle);
                            return RequestOutcome::Aborted {
                                reason: AbortReason::DeadlockCycle,
                            };
                        }
                        victim => {
                            self.abort_internal(victim, AbortReason::VictimSelected);
                            self.events.push(KernelEvent::Aborted {
                                txn: victim,
                                reason: AbortReason::VictimSelected,
                            });
                            continue;
                        }
                    }
                }
                for holder in &conflicts {
                    self.graph_add_edge(txn, *holder, EdgeKind::WaitFor);
                }
                self.object_mut(object).push_blocked(txn, call.clone());
                let rec = self.txns.get_mut(&txn).expect("transaction exists");
                rec.state = TxnState::Blocked;
                rec.pending = Some(PendingRequest {
                    object,
                    call,
                });
                rec.touched.insert(object);
                rec.times_blocked += 1;
                if !is_retry {
                    self.stats.blocks += 1;
                }
                return RequestOutcome::Blocked {
                    waiting_on: conflicts,
                };
            }

            if commit_deps.is_empty() {
                // Step 2: everything commutes.
                let result = self.execute_op(txn, object, call);
                if is_retry {
                    self.stats.unblocks += 1;
                }
                return RequestOutcome::Executed {
                    result,
                    commit_deps: Vec::new(),
                };
            }

            // Step 3: recoverable — check the commit-dependency relation
            // stays acyclic, then execute with commit-dependency edges.
            if self.cycle_would_close(txn, &commit_deps, EdgeKind::CommitDep) {
                match self.select_victim(txn, &commit_deps) {
                    victim if victim == txn => {
                        self.abort_internal(txn, AbortReason::CommitDependencyCycle);
                        return RequestOutcome::Aborted {
                            reason: AbortReason::CommitDependencyCycle,
                        };
                    }
                    victim => {
                        self.abort_internal(victim, AbortReason::VictimSelected);
                        self.events.push(KernelEvent::Aborted {
                            txn: victim,
                            reason: AbortReason::VictimSelected,
                        });
                        continue;
                    }
                }
            }
            for holder in &commit_deps {
                // The stat counts one dependency per (requester, holder)
                // pair per admitted recoverable request, but the edge is
                // deduplicated: repeated recoverable operations against the
                // same holder would otherwise pile up edge multiplicity the
                // graph has to carry until termination.
                self.stats.commit_dependencies += 1;
                if !self.graph.has_edge(txn, *holder, EdgeKind::CommitDep) {
                    self.graph_add_edge(txn, *holder, EdgeKind::CommitDep);
                }
            }
            let result = self.execute_op(txn, object, call);
            if is_retry {
                self.stats.unblocks += 1;
            }
            return RequestOutcome::Executed {
                result,
                commit_deps,
            };
        }
    }

    /// Dispatch the per-request cycle check to the configured detector.
    /// Both paths count towards [`Self::cycle_checks`] and are proven
    /// behaviourally identical by differential tests.
    ///
    /// While the shard is entangled, a locally negative verdict is
    /// **escalated**: the same hypothetical edges are checked against the
    /// cross-shard escalation graph, which holds the union of every
    /// entangled shard's edges — the only place a cycle spanning shards is
    /// visible. The escalated check atomically *reserves* the edges on a
    /// pass ([`GlobalGraph::check_and_reserve`]), closing the window in
    /// which two requests racing in two entangled shards could both pass
    /// before either mirrored its edge. An isolated (non-entangled) shard
    /// never takes the global lock here, because no transaction with a
    /// presence in this shard has edges anywhere else.
    ///
    /// `kind` is the edge kind the caller will add on a negative verdict
    /// (wait-for for the blocking branch, commit-dep for the recoverable
    /// branch).
    fn cycle_would_close(&mut self, from: TxnId, targets: &[TxnId], kind: EdgeKind) -> bool {
        let local = match self.config.cycle_detector {
            CycleDetector::Incremental => self.graph.would_close_cycle(from, targets),
            CycleDetector::SccOracle => self.graph.would_close_cycle_oracle(from, targets),
        };
        if local || !self.entangled {
            return local;
        }
        let Some(global) = self.escalation.clone() else {
            return local;
        };
        self.stats.escalated_checks += 1;
        global.check_and_reserve(from, targets, kind)
    }

    fn classify_for(&self, txn: TxnId, object: ObjectId, call: &OpCall) -> Classification {
        let obj = self.object_ref(object);
        let fairness = if self.config.fair_scheduling {
            obj.blocked_pairs()
        } else {
            Vec::new()
        };
        obj.classify(self.config.policy, txn, call, &fairness)
    }

    /// Pick the transaction to abort for a cycle closed by `requester`
    /// adding edges towards `targets`.
    fn select_victim(&mut self, requester: TxnId, targets: &[TxnId]) -> TxnId {
        match self.config.victim {
            VictimPolicy::Requester => requester,
            VictimPolicy::Youngest => {
                let Some(path) = self.graph.path_from_any(targets, requester) else {
                    return requester;
                };
                // The cycle consists of the requester plus the path back to
                // it; the youngest is the one with the largest id. A
                // pseudo-committed participant can never be the victim (it
                // is guaranteed to commit). A *coordinated* (multi-shard)
                // participant other than the requester is skipped too: its
                // session thread could be mid-commit in another shard, and
                // aborting it out from under the cross-shard commit
                // protocol would race the vote — aborting the requester
                // (who is here, on this thread, inside its own request) is
                // always safe.
                path.into_iter()
                    .filter(|t| {
                        self.txns
                            .get(t)
                            .map(|r| {
                                matches!(r.state, TxnState::Active | TxnState::Blocked)
                                    && (!r.coordinated || r.id == requester)
                            })
                            .unwrap_or(false)
                    })
                    .max()
                    .unwrap_or(requester)
            }
        }
    }

    fn execute_op(&mut self, txn: TxnId, object: ObjectId, call: OpCall) -> OpResult {
        self.next_seq += 1;
        let seq = self.next_seq;
        let result = self.objects[object.0 as usize].execute(txn, seq, call.clone());
        let rec = self.txns.get_mut(&txn).expect("transaction exists");
        rec.ops.push(ExecutedOp {
            object,
            call: call.clone(),
            result: result.clone(),
            seq,
        });
        rec.touched.insert(object);
        self.stats.operations_executed += 1;
        if let Some(h) = &mut self.history {
            h.record_op(txn, object, call, result.clone(), seq);
        }
        result
    }

    fn actually_commit(&mut self, txn: TxnId) {
        self.actually_commit_stamped(txn, None);
    }

    /// Fold a transaction's effects under a global commit stamp: the
    /// coordinator-drawn one for multi-shard commits, or the next clock
    /// value otherwise. The stamp is drawn **before** the version-GC
    /// watermark is loaded — the order the snapshot-visibility argument in
    /// ARCHITECTURE.md relies on (a fold whose stamp exceeds a live
    /// snapshot's begin stamp is guaranteed to observe that snapshot's
    /// watermark and preserve the version it still needs).
    fn actually_commit_stamped(&mut self, txn: TxnId, stamp: Option<u64>) {
        self.termination_epoch += 1;
        let rec = self.txns.remove(&txn).expect("transaction exists");
        debug_assert!(matches!(
            rec.state,
            TxnState::Active | TxnState::PseudoCommitted
        ));
        // Durability: append the commit record while still holding the
        // shard lock, so the log's record order is the shard's actual
        // commit order (replay re-applies in that order). The coordinator
        // logs multi-shard transactions itself, before their per-shard
        // in-memory applications, and marks them `wal_logged`.
        let wal_ticket = match &self.wal {
            Some((wal, shard)) if !rec.wal_logged && !rec.ops.is_empty() => {
                let ops: Vec<sbcc_wal::LoggedOp> = rec
                    .ops
                    .iter()
                    .map(|op| sbcc_wal::LoggedOp {
                        object: self.objects[op.object.0 as usize].name().to_owned(),
                        call: op.call.clone(),
                        result: op.result.clone(),
                    })
                    .collect();
                Some(wal.append_commit(*shard, None, &ops))
            }
            _ => None,
        };
        self.next_commit_index += 1;
        let stamp =
            stamp.unwrap_or_else(|| self.commit_clock.fetch_add(1, Ordering::SeqCst) + 1);
        let watermark = self.version_floor.load(Ordering::SeqCst);
        let touched: Vec<ObjectId> = rec.touched.iter().copied().collect();
        for obj in &touched {
            self.stats.versions_pruned +=
                self.objects[obj.0 as usize].commit_txn(txn, stamp, watermark);
        }
        self.graph_remove_node(txn);
        self.pending_dirty.extend(touched);
        self.stats.commits += 1;
        self.finished.insert(
            txn,
            FinishedTxn {
                state: TxnState::Committed,
                executed_ops: rec.executed_ops(),
                wal_ticket,
                commit_stamp: Some(stamp),
            },
        );
        if let Some(h) = &mut self.history {
            h.record_committed(txn, self.next_commit_index);
        }
    }

    fn abort_internal(&mut self, txn: TxnId, reason: AbortReason) {
        self.termination_epoch += 1;
        let mut rec = self.txns.remove(&txn).expect("transaction exists");
        debug_assert!(
            matches!(rec.state, TxnState::Active | TxnState::Blocked),
            "only active or blocked transactions can abort (got {})",
            rec.state
        );
        let pending_object = rec.pending.take().map(|p| p.object);
        let touched: Vec<ObjectId> = rec.touched.iter().copied().collect();
        if let Some(obj) = pending_object {
            self.objects[obj.0 as usize].remove_blocked(txn);
        }
        for obj in &touched {
            self.objects[obj.0 as usize].abort_txn(txn);
        }
        self.graph_remove_node(txn);
        self.pending_dirty.extend(touched);
        match reason {
            AbortReason::DeadlockCycle => self.stats.aborts_deadlock += 1,
            AbortReason::CommitDependencyCycle => self.stats.aborts_commit_cycle += 1,
            AbortReason::VictimSelected => self.stats.aborts_victim += 1,
            AbortReason::SsiConflict => self.stats.aborts_ssi += 1,
            AbortReason::UndeclaredAccess => self.stats.aborts_undeclared += 1,
            AbortReason::Explicit => self.stats.aborts_explicit += 1,
        }
        self.finished.insert(
            txn,
            FinishedTxn {
                state: TxnState::Aborted,
                executed_ops: rec.executed_ops(),
                wal_ticket: None,
                commit_stamp: None,
            },
        );
        if let Some(h) = &mut self.history {
            h.record_aborted(txn, reason);
        }
    }

    /// Propagate the consequences of terminations: cascade actual commits of
    /// pseudo-committed transactions whose dependencies are gone, and retry
    /// blocked requests on objects whose logs changed. Runs to fixpoint.
    fn settle(&mut self) {
        loop {
            // Cascade commits of pseudo-committed transactions. A
            // *coordinated* transaction is never committed locally — zero
            // local out-degree only means its last dependency in THIS shard
            // is gone; it is reported to the coordinator, which re-runs the
            // commit vote across every shard it is enrolled in.
            let mut cascaded = false;
            loop {
                let mut candidates: Vec<TxnId> = Vec::new();
                for t in self.graph.zero_out_degree_nodes() {
                    let Some(rec) = self.txns.get(&t) else {
                        continue;
                    };
                    if rec.state != TxnState::PseudoCommitted {
                        continue;
                    }
                    if rec.coordinated {
                        if !self.coordination_ready.contains(&t) {
                            self.coordination_ready.push(t);
                        }
                    } else {
                        candidates.push(t);
                    }
                }
                if candidates.is_empty() {
                    break;
                }
                for txn in candidates {
                    self.actually_commit(txn);
                    self.events.push(KernelEvent::Committed { txn });
                    cascaded = true;
                }
            }

            if self.pending_dirty.is_empty() {
                if !cascaded {
                    break;
                }
                continue;
            }

            // Retry blocked requests on the dirty objects.
            let mut dirty = std::mem::take(&mut self.pending_dirty);
            dirty.sort_unstable();
            dirty.dedup();
            for obj in dirty {
                self.retry_blocked(obj);
            }
        }
    }

    fn retry_blocked(&mut self, object: ObjectId) {
        let queue = self.objects[object.0 as usize].take_blocked();
        for request in queue {
            // Skip stale entries: the transaction may have been aborted (as
            // a cycle victim) while we were processing earlier entries.
            let still_blocked = self
                .txns
                .get(&request.txn)
                .map(|r| {
                    r.state == TxnState::Blocked
                        && r.pending
                            .as_ref()
                            .map(|p| p.object == object && p.call == request.call)
                            .unwrap_or(false)
                })
                .unwrap_or(false);
            if !still_blocked {
                continue;
            }
            {
                let rec = self.txns.get_mut(&request.txn).expect("transaction exists");
                rec.state = TxnState::Active;
                rec.pending = None;
            }
            self.graph_clear_wait_edges(request.txn);
            let outcome = self.process_request(request.txn, object, request.call, true, None);
            match &outcome {
                RequestOutcome::Blocked { .. } => {
                    // Still blocked; it was re-queued by process_request.
                }
                _ => {
                    self.events.push(KernelEvent::Unblocked {
                        txn: request.txn,
                        outcome,
                    });
                }
            }
        }
    }
}
