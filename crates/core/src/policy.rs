//! Scheduler configuration: conflict policy, recovery strategy, fairness and
//! victim selection.

use sbcc_graph::ReorderStrategy;
use std::fmt;

/// Which semantic relation defines a conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictPolicy {
    /// The baseline the paper compares against: a requested operation may
    /// execute only if it **commutes** with every uncommitted operation of
    /// other live transactions; otherwise the requester waits.
    CommutativityOnly,
    /// The paper's contribution: a requested operation may also execute if
    /// it is **recoverable** relative to the uncommitted operations it does
    /// not commute with, at the price of commit-dependency edges.
    Recoverability,
}

impl ConflictPolicy {
    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            ConflictPolicy::CommutativityOnly => "commutativity",
            ConflictPolicy::Recoverability => "recoverability",
        }
    }
}

impl fmt::Display for ConflictPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How transaction effects are made durable / undone (Section 4.4).
///
/// Both strategies produce identical observable histories for schedules the
/// protocol admits (this is asserted by property tests); they differ in
/// *when* object state is physically updated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryStrategy {
    /// Operations are buffered per transaction (an intentions list); return
    /// values are computed against the committed state plus the invoking
    /// transaction's own earlier operations, and the effects are applied to
    /// the shared committed state only at actual commit, in
    /// commit-dependency order. Aborts simply discard the intentions.
    IntentionsList,
    /// Operations are applied immediately to a materialised uncommitted
    /// state; aborting a transaction removes its operations from the log
    /// and rebuilds the materialised state by replaying the surviving
    /// operations over the committed state (a semantic undo).
    UndoReplay,
}

impl RecoveryStrategy {
    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryStrategy::IntentionsList => "intentions-list",
            RecoveryStrategy::UndoReplay => "undo-replay",
        }
    }
}

impl fmt::Display for RecoveryStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which algorithm answers the per-request "would this close a cycle?"
/// question on the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleDetector {
    /// The incremental detector: a topological order is maintained across
    /// edge inserts (Pearce–Kelly) and each check is pruned by it —
    /// amortised near-constant on the scheduler's workload. The default.
    Incremental,
    /// The pre-incremental path: a from-scratch Tarjan SCC pass over a
    /// snapshot of the graph per check. Retained for benchmarks and
    /// differential tests; behaviourally identical, asymptotically slower.
    SccOracle,
}

impl fmt::Display for CycleDetector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleDetector::Incremental => write!(f, "incremental"),
            CycleDetector::SccOracle => write!(f, "scc-oracle"),
        }
    }
}

/// Which transaction is aborted when a request would close a cycle in the
/// dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VictimPolicy {
    /// Abort the requesting transaction (the paper's Figure-2 choice).
    Requester,
    /// Abort the youngest transaction participating in the would-be cycle;
    /// if that is the requester, this degenerates to [`VictimPolicy::Requester`].
    Youngest,
}

impl fmt::Display for VictimPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VictimPolicy::Requester => write!(f, "requester"),
            VictimPolicy::Youngest => write!(f, "youngest"),
        }
    }
}

/// What the scheduler does when a *declared* batch submits an operation
/// on an object outside its declared access set (a mis-declaration —
/// detected at admission, never trusted; see [`sbcc_adt::AccessSet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UndeclaredPolicy {
    /// Demote the batch to the per-op semantic classifier — the
    /// declaration is discarded and every call goes through the normal
    /// commutativity/recoverability machinery. Correct but slower; the
    /// forgiving default.
    Escalate,
    /// Abort the transaction with
    /// [`crate::AbortReason::UndeclaredAccess`] (scheduler-initiated, so
    /// retry loops restart it). The strict mode a deployment can use to
    /// surface broken declarations instead of silently paying the
    /// classified path.
    Abort,
}

impl UndeclaredPolicy {
    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            UndeclaredPolicy::Escalate => "escalate",
            UndeclaredPolicy::Abort => "abort",
        }
    }
}

impl fmt::Display for UndeclaredPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Complete scheduler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// Conflict predicate (commutativity-only vs recoverability).
    pub policy: ConflictPolicy,
    /// Fair scheduling: an incoming request that conflicts with a *blocked*
    /// request is blocked behind it, even if it does not conflict with any
    /// active operation (Section 5.2, "real database systems do this to
    /// prevent starvation of writers by readers").
    pub fair_scheduling: bool,
    /// Recovery strategy.
    pub recovery: RecoveryStrategy,
    /// Victim selection when a cycle is detected.
    pub victim: VictimPolicy,
    /// Cycle-detection algorithm for the per-request checks.
    pub cycle_detector: CycleDetector,
    /// How the dependency graph repairs topological-order violations
    /// (gap-labeled by default; the dense redistribution is retained as a
    /// benchmark baseline, exactly like [`CycleDetector::SccOracle`]).
    pub reorder: ReorderStrategy,
    /// Record the full execution history (needed by the serializability
    /// checker; adds memory proportional to the number of operations).
    pub record_history: bool,
    /// Retry budget for the closure runners ([`crate::Database::run`] and
    /// [`crate::aio::AsyncDatabase::run`]): how many times a scheduler
    /// abort may restart the body before the runner gives up with
    /// [`crate::CoreError::RetriesExhausted`]. The default (10 000) is far
    /// beyond anything a healthy workload reaches — the budget exists so
    /// adversarial schedules and fault-injection harnesses surface as an
    /// error instead of a livelock.
    pub max_retries: usize,
    /// What to do when a declared batch touches an undeclared object.
    pub undeclared: UndeclaredPolicy,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            policy: ConflictPolicy::Recoverability,
            fair_scheduling: true,
            recovery: RecoveryStrategy::IntentionsList,
            victim: VictimPolicy::Requester,
            cycle_detector: CycleDetector::Incremental,
            reorder: ReorderStrategy::GapLabel,
            record_history: true,
            max_retries: 10_000,
            undeclared: UndeclaredPolicy::Escalate,
        }
    }
}

impl SchedulerConfig {
    /// The commutativity-only baseline configuration.
    pub fn commutativity_baseline() -> Self {
        SchedulerConfig {
            policy: ConflictPolicy::CommutativityOnly,
            ..SchedulerConfig::default()
        }
    }

    /// Builder-style: set the conflict policy.
    pub fn with_policy(mut self, policy: ConflictPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style: enable or disable fair scheduling.
    pub fn with_fair_scheduling(mut self, fair: bool) -> Self {
        self.fair_scheduling = fair;
        self
    }

    /// Builder-style: set the recovery strategy.
    pub fn with_recovery(mut self, recovery: RecoveryStrategy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Builder-style: set the victim policy.
    pub fn with_victim(mut self, victim: VictimPolicy) -> Self {
        self.victim = victim;
        self
    }

    /// Builder-style: set the cycle-detection algorithm.
    pub fn with_cycle_detector(mut self, detector: CycleDetector) -> Self {
        self.cycle_detector = detector;
        self
    }

    /// Builder-style: set the order-violation repair strategy.
    pub fn with_reorder(mut self, reorder: ReorderStrategy) -> Self {
        self.reorder = reorder;
        self
    }

    /// Builder-style: enable or disable history recording.
    pub fn with_history(mut self, record: bool) -> Self {
        self.record_history = record;
        self
    }

    /// Builder-style: set the retry budget of the closure runners.
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Builder-style: set the undeclared-access policy for declared
    /// batches.
    pub fn with_undeclared(mut self, undeclared: UndeclaredPolicy) -> Self {
        self.undeclared = undeclared;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_uses_recoverability_with_fairness() {
        let c = SchedulerConfig::default();
        assert_eq!(c.policy, ConflictPolicy::Recoverability);
        assert!(c.fair_scheduling);
        assert_eq!(c.recovery, RecoveryStrategy::IntentionsList);
        assert_eq!(c.victim, VictimPolicy::Requester);
        assert_eq!(c.cycle_detector, CycleDetector::Incremental);
        assert_eq!(c.reorder, ReorderStrategy::GapLabel);
        assert!(c.record_history);
        assert_eq!(c.max_retries, 10_000);
        assert_eq!(c.undeclared, UndeclaredPolicy::Escalate);
    }

    #[test]
    fn baseline_only_differs_in_policy() {
        let base = SchedulerConfig::commutativity_baseline();
        assert_eq!(base.policy, ConflictPolicy::CommutativityOnly);
        assert_eq!(
            SchedulerConfig {
                policy: ConflictPolicy::Recoverability,
                ..base
            },
            SchedulerConfig::default()
        );
    }

    #[test]
    fn builder_methods_set_each_field() {
        let c = SchedulerConfig::default()
            .with_policy(ConflictPolicy::CommutativityOnly)
            .with_fair_scheduling(false)
            .with_recovery(RecoveryStrategy::UndoReplay)
            .with_victim(VictimPolicy::Youngest)
            .with_cycle_detector(CycleDetector::SccOracle)
            .with_reorder(ReorderStrategy::DenseRedistribute)
            .with_history(false)
            .with_max_retries(7)
            .with_undeclared(UndeclaredPolicy::Abort);
        assert_eq!(c.policy, ConflictPolicy::CommutativityOnly);
        assert!(!c.fair_scheduling);
        assert_eq!(c.recovery, RecoveryStrategy::UndoReplay);
        assert_eq!(c.victim, VictimPolicy::Youngest);
        assert_eq!(c.cycle_detector, CycleDetector::SccOracle);
        assert_eq!(c.reorder, ReorderStrategy::DenseRedistribute);
        assert!(!c.record_history);
        assert_eq!(c.max_retries, 7);
        assert_eq!(c.undeclared, UndeclaredPolicy::Abort);
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(ConflictPolicy::CommutativityOnly.to_string(), "commutativity");
        assert_eq!(ConflictPolicy::Recoverability.to_string(), "recoverability");
        assert_eq!(RecoveryStrategy::IntentionsList.to_string(), "intentions-list");
        assert_eq!(RecoveryStrategy::UndoReplay.to_string(), "undo-replay");
        assert_eq!(VictimPolicy::Requester.to_string(), "requester");
        assert_eq!(VictimPolicy::Youngest.to_string(), "youngest");
        assert_eq!(CycleDetector::Incremental.to_string(), "incremental");
        assert_eq!(CycleDetector::SccOracle.to_string(), "scc-oracle");
        assert_eq!(UndeclaredPolicy::Escalate.to_string(), "escalate");
        assert_eq!(UndeclaredPolicy::Abort.to_string(), "abort");
    }
}
