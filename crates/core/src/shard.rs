//! The sharded scheduler kernel: N independent [`SchedulerKernel`]s plus a
//! lightweight cross-shard coordinator.
//!
//! # Why sharding works for this protocol
//!
//! The paper's semantic relations (commutativity / recoverability per ADT
//! operation pair) are **per object**: classification of a request only ever
//! reads the execution log and blocked queue of the one object it targets.
//! The only truly global state is transaction-level — liveness, the
//! dependency graph, and the commit order. A [`ShardedKernel`] therefore
//! partitions the *objects* across `shards` independent kernels (hash of
//! the registration name, see [`shard_of_name`]), each with its own lock,
//! its own log index and its own local [`sbcc_graph::DependencyGraph`],
//! and keeps a small coordinator for the transaction-level pieces.
//!
//! # Sharding invariants
//!
//! 1. **Object ownership is static**: an object registered under a name
//!    lives in `shard_of_name(name, shards)` forever. Every request for it
//!    is processed under that shard's lock only.
//! 2. **Transaction ids are global**: [`ShardedKernel::begin`] assigns ids
//!    from one atomic counter; a shard *adopts* the id the first time the
//!    transaction touches one of its objects (lazy enrollment).
//! 3. **Local graphs are authoritative for intra-shard cycles**: a
//!    transaction enrolled in exactly one shard has all of its edges in
//!    that shard's graph, so the ordinary local cycle check is complete
//!    for it — **intra-shard admission takes no global lock**.
//! 4. **Cross-shard edges escalate**: the moment a transaction enrolls in
//!    a second shard, every shard it is enrolled in becomes *entangled* —
//!    its local graph is bulk-mirrored into the [`GlobalGraph`] and every
//!    subsequent edge add/remove is mirrored too (see
//!    [`SchedulerKernel::entangle`]). A cycle check that finds no local
//!    cycle in an entangled shard is re-run against the global graph,
//!    which holds the union of all entangled shards' edges. An entangled
//!    shard returns to the local-only fast path once it quiesces (no live
//!    transactions).
//!
//! ## Why the escalation rule is sound
//!
//! A cycle in the union of the local graphs either lies inside one shard
//! (caught by that shard's local check) or spans shards. A spanning cycle
//! enters and leaves each contributing shard through transactions enrolled
//! in two shards; those boundary transactions entangled every contributing
//! shard *before* the cycle's last edge could be inserted (their dual
//! enrollment precedes their edges), so by insertion time every other edge
//! of the cycle is present in the global graph and the escalated check
//! refuses the request.
//!
//! # Cross-shard termination protocol
//!
//! * **Commit** of a transaction enrolled in one shard is the unsharded
//!   fast path: the shard's own [`SchedulerKernel::commit`] decides
//!   between actual and pseudo-commit locally.
//! * **Commit** of a multi-shard transaction collects per-shard votes (the
//!   local commit-dependency out-neighbours) under the coordinator's
//!   termination lock. An empty union applies
//!   [`SchedulerKernel::commit_coordinated`] shard by shard; otherwise the
//!   transaction pseudo-commits in every shard and each shard reports
//!   (via [`SchedulerKernel::drain_coordination_ready`]) when its local
//!   out-degree drops to zero, triggering a re-vote.
//! * **Aborts** apply shard by shard; victim selection never picks a
//!   multi-shard transaction other than the requester (see
//!   [`crate::policy::VictimPolicy`] handling in the kernel), so a
//!   scheduler-initiated abort of a multi-shard transaction only ever
//!   happens on the transaction's own session thread — there is no race
//!   against a concurrent commit vote for the same transaction.
//!
//! With `shards = 1` nothing ever entangles, every transaction is
//! single-shard, and the subsystem degenerates to the unsharded kernel's
//! behaviour (the sharded-vs-single differential test suite pins this).

use crate::errors::CoreError;
use crate::events::{
    AbortReason, BatchOutcome, BatchStop, CommitOutcome, KernelEvent, RequestOutcome,
};
use crate::kernel::SchedulerKernel;
use crate::object::ObjectId;
use crate::policy::SchedulerConfig;
use crate::stats::{KernelStats, ShardStats, StatsSnapshot};
use crate::txn::{BatchCall, TxnId, TxnState};
use crate::chaos::{self, sync::Mutex, sync::MutexGuard, ChaosPoint};
use sbcc_adt::{AdtObject, AdtSpec, OpCall, SemanticObject};
use sbcc_graph::{DependencyGraph, EdgeKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Environment variable overriding the default shard count of
/// [`DatabaseConfig`] (used by CI to run the test suites single- and
/// multi-sharded). Accepts a positive integer or `auto`
/// ([`ShardCount::Auto`], one shard per available core).
pub const SHARDS_ENV: &str = "SBCC_SHARDS";

/// Environment variable enabling the write-ahead log: its value is the log
/// directory (see [`DatabaseConfig::wal_from_env`]).
pub const WAL_ENV: &str = "SBCC_WAL";

/// Environment variable overriding the WAL fsync policy
/// (`never` / `group` / `always`).
pub const WAL_FSYNC_ENV: &str = "SBCC_WAL_FSYNC";

/// Environment variable turning on **declaration by default** (`1` or
/// `true`): session-layer batches submitted without an explicit access
/// declaration derive one from their own call list (every touched object
/// declared written), routing the whole suite through the group-admission
/// path. Used by CI's `SBCC_DECLARED=1` leg; see
/// [`crate::db::Batch::declare_write`].
pub const DECLARED_ENV: &str = "SBCC_DECLARED";

/// `true` when [`DECLARED_ENV`] requests declaration-by-default. Read
/// per call (not cached) so tests can flip it; the session layer caches
/// the answer per database.
pub fn declared_from_env() -> bool {
    std::env::var(DECLARED_ENV)
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true")
        })
        .unwrap_or(false)
}

/// The shard count of a [`DatabaseConfig`]: either a fixed number of
/// kernels or `Auto`, which resolves to the machine's available
/// parallelism at [`ShardedKernel::new`] time.
///
/// `Auto` is the right default for servers: with one shard per core,
/// disjoint-footprint sessions spread across per-shard locks and the
/// per-termination settle sweep only walks the shard-local live
/// population. Both builder and environment variable accept it:
///
/// ```
/// use sbcc_core::{DatabaseConfig, SchedulerConfig, ShardCount};
/// let config = DatabaseConfig::new(SchedulerConfig::default())
///     .with_shards(ShardCount::Auto);
/// assert!(config.shards.resolve() >= 1);
/// // `with_shards` still takes plain integers too:
/// let fixed = DatabaseConfig::new(SchedulerConfig::default()).with_shards(4);
/// assert_eq!(fixed.shards, ShardCount::Fixed(4));
/// assert_eq!("auto".parse::<ShardCount>(), Ok(ShardCount::Auto));
/// assert_eq!("8".parse::<ShardCount>(), Ok(ShardCount::Fixed(8)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardCount {
    /// Exactly this many shards ( ≥ 1 ). One shard reproduces the
    /// unsharded kernel's behaviour exactly.
    Fixed(usize),
    /// One shard per available core
    /// ([`std::thread::available_parallelism`], falling back to 1 when the
    /// platform cannot report it).
    Auto,
}

impl ShardCount {
    /// The concrete number of shards this setting stands for, resolved
    /// against the current machine.
    pub fn resolve(self) -> usize {
        match self {
            ShardCount::Fixed(n) => n,
            ShardCount::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

impl From<usize> for ShardCount {
    fn from(n: usize) -> Self {
        ShardCount::Fixed(n)
    }
}

impl std::fmt::Display for ShardCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardCount::Fixed(n) => write!(f, "{n}"),
            ShardCount::Auto => f.write_str("auto"),
        }
    }
}

impl std::str::FromStr for ShardCount {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("auto") {
            return Ok(ShardCount::Auto);
        }
        match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(ShardCount::Fixed(n)),
            _ => Err(format!(
                "expected a positive shard count or \"auto\", got {s:?}"
            )),
        }
    }
}

/// Database-level configuration: the per-shard scheduler configuration plus
/// the shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct DatabaseConfig {
    /// Scheduler configuration applied to every shard kernel.
    pub scheduler: SchedulerConfig,
    /// Number of independent scheduler kernels (fixed ≥ 1, or
    /// [`ShardCount::Auto`] for one per core).
    pub shards: ShardCount,
    /// Write-ahead-log configuration. `None` (the default) runs without
    /// durability; `Some` makes [`crate::Database::with_config`] replay
    /// the log directory on open and append every committed transaction's
    /// operations from then on.
    pub wal: Option<sbcc_wal::WalConfig>,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig::new(SchedulerConfig::default())
    }
}

impl DatabaseConfig {
    /// Configuration with the shard count taken from the `SBCC_SHARDS`
    /// environment variable (default 1; `auto` selects
    /// [`ShardCount::Auto`]).
    pub fn new(scheduler: SchedulerConfig) -> Self {
        DatabaseConfig {
            scheduler,
            shards: Self::shards_from_env(),
            wal: Self::wal_from_env(),
        }
    }

    /// Builder-style: set the shard count. Accepts a plain `usize` or a
    /// [`ShardCount`] (`.with_shards(ShardCount::Auto)`).
    ///
    /// # Panics
    ///
    /// Panics if the count is a fixed zero.
    pub fn with_shards(mut self, shards: impl Into<ShardCount>) -> Self {
        let shards = shards.into();
        assert!(
            shards != ShardCount::Fixed(0),
            "at least one shard is required"
        );
        self.shards = shards;
        self
    }

    /// The shard count requested through the `SBCC_SHARDS` environment
    /// variable, defaulting to one shard when unset or unparsable.
    pub fn shards_from_env() -> ShardCount {
        std::env::var(SHARDS_ENV)
            .ok()
            .and_then(|v| v.parse::<ShardCount>().ok())
            .unwrap_or(ShardCount::Fixed(1))
    }

    /// Builder-style: enable the write-ahead log.
    pub fn with_wal(mut self, wal: sbcc_wal::WalConfig) -> Self {
        self.wal = Some(wal);
        self
    }

    /// The write-ahead-log configuration requested through the environment:
    /// `SBCC_WAL=<dir>` enables the log (group-commit fsync by default),
    /// `SBCC_WAL_FSYNC=never|group|always` overrides the fsync policy.
    /// Unset (or an empty `SBCC_WAL`) disables durability.
    pub fn wal_from_env() -> Option<sbcc_wal::WalConfig> {
        let dir = std::env::var(WAL_ENV).ok().filter(|d| !d.is_empty())?;
        let mut config = sbcc_wal::WalConfig::new(dir);
        if let Ok(policy) = std::env::var(WAL_FSYNC_ENV) {
            config.fsync = match policy.as_str() {
                "never" => sbcc_wal::FsyncPolicy::Never,
                "always" => sbcc_wal::FsyncPolicy::Always,
                _ => sbcc_wal::FsyncPolicy::GroupCommit,
            };
        }
        Some(config)
    }
}

/// Stable shard routing: FNV-1a over the registration name, reduced modulo
/// the shard count. Deterministic across runs and platforms.
pub fn shard_of_name(name: &str, shards: usize) -> u32 {
    debug_assert!(shards >= 1);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards as u64) as u32
}

/// Where an object lives: its shard plus its id *inside that shard's
/// kernel*. Carried by [`crate::ObjectHandle`] so the session layer routes
/// without a directory lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectLoc {
    /// Owning shard.
    pub shard: u32,
    /// The object's id within the owning shard's kernel.
    pub local: ObjectId,
}

/// The cross-shard escalation graph: the union of every entangled shard's
/// dependency edges, behind its own small lock. Consulted only by cycle
/// checks in entangled shards; isolated shards never touch it.
#[derive(Debug, Default)]
pub struct GlobalGraph {
    graph: Mutex<DependencyGraph<TxnId>>,
}

impl GlobalGraph {
    /// An empty escalation graph.
    pub fn new() -> Self {
        GlobalGraph::default()
    }

    /// An empty escalation graph using the given violation-repair
    /// strategy — [`ShardedKernel::new`] passes the same
    /// [`crate::SchedulerConfig::reorder`] the shard kernels run, so an
    /// old-vs-new comparison stays pure across the escalation path too.
    pub fn with_reorder(reorder: sbcc_graph::ReorderStrategy) -> Self {
        let mut graph = DependencyGraph::new();
        graph.set_reorder_strategy(reorder);
        GlobalGraph {
            graph: Mutex::new(graph),
        }
    }

    pub(crate) fn add_edge(&self, from: TxnId, to: TxnId, kind: EdgeKind) {
        self.graph.lock().add_edge(from, to, kind);
    }

    pub(crate) fn remove_node(&self, txn: TxnId) {
        self.graph.lock().remove_node(txn);
    }

    pub(crate) fn clear_out_edges(&self, txn: TxnId, kind: EdgeKind) {
        self.graph.lock().clear_out_edges(txn, kind);
    }

    /// Escalated check **and reservation** in one critical section: if the
    /// hypothetical edges close no cycle, insert them immediately so that
    /// a concurrent escalated check from another shard sees them.
    ///
    /// Without the reservation the check and the later mirror (performed
    /// once the kernel actually adds the edges, under a *different* shard
    /// lock) would be two separate global-graph critical sections, and two
    /// requests racing in two entangled shards could each pass the check
    /// before either inserted its edge — admitting exactly the undetected
    /// cross-shard cycle the escalation path exists to refuse. A passed
    /// check is always followed by the kernel adding those edges (the
    /// Figure-2 branches never abandon them), so reserved edges are never
    /// phantom; the kernel's own mirror then merely raises the pair's
    /// multiplicity, which is harmless because the global graph is only
    /// ever pruned wholesale (node removal, per-kind out-edge clears).
    pub fn check_and_reserve(&self, from: TxnId, targets: &[TxnId], kind: EdgeKind) -> bool {
        let mut graph = self.graph.lock();
        if graph.would_close_cycle(from, targets) {
            return true;
        }
        for target in targets {
            graph.add_edge(from, *target, kind);
        }
        false
    }

    /// Bulk-mirror every edge of a shard's local graph (entanglement
    /// upload). Returns the number of logical edges mirrored.
    pub(crate) fn mirror_all(&self, local: &DependencyGraph<TxnId>) -> u64 {
        let mut g = self.graph.lock();
        let mut mirrored = 0u64;
        local.for_each_edge(|from, to, kind, multiplicity| {
            for _ in 0..multiplicity {
                g.add_edge(from, to, kind);
            }
            mirrored += u64::from(multiplicity);
        });
        mirrored
    }

    /// Cycle checks performed on this graph so far.
    pub fn cycle_checks(&self) -> u64 {
        self.graph.lock().cycle_checks()
    }

    /// Reorder telemetry of the escalation graph. Mirrored edges arrive in
    /// per-shard admission order, which can violate the global graph's own
    /// maintained order, so entangled workloads repair here too.
    pub fn reorder_telemetry(&self) -> sbcc_graph::OrderTelemetry {
        self.graph.lock().order_telemetry()
    }

    /// Number of nodes currently mirrored.
    pub fn node_count(&self) -> usize {
        self.graph.lock().node_count()
    }

    /// Full-graph acyclicity check (invariant validation).
    pub fn has_cycle(&self) -> bool {
        self.graph.lock().has_cycle()
    }
}

/// One shard: a kernel behind its own lock, plus observability counters.
struct ShardCell {
    kernel: Mutex<SchedulerKernel>,
    lock_acquisitions: AtomicU64,
}

/// Coordinator-side record of a live transaction.
#[derive(Debug, Clone, Default)]
struct EnrollRec {
    /// Shards the transaction is enrolled in, in enrollment order.
    shards: Vec<u32>,
    /// `true` once the transaction pseudo-committed (coordinator-level
    /// flag; the per-shard states agree).
    pseudo: bool,
}

#[derive(Debug, Default)]
struct Enrollments {
    live: HashMap<TxnId, EnrollRec>,
    finished: HashMap<TxnId, TxnState>,
}

/// Coordinator-side SSI record of one transaction (Cahill-style
/// serializable snapshot isolation, tracking rw-antidependencies between
/// snapshot readers and concurrent writers).
///
/// The flags are **sticky**: once a transaction acquires an in- or
/// out-conflict it keeps it for life. A transaction with *both* flags is
/// the pivot of a dangerous structure and must not commit; the check runs
/// at snapshot-read time and at commit entry (never later — a
/// pseudo-commit is a promise to commit, so everything is decided before
/// it).
#[derive(Debug, Default)]
struct SsiTxn {
    /// Begin stamp: the value of the global commit clock when the
    /// transaction began. Classified transactions are stamped too (while
    /// SSI is enabled) so the committed-reader skip test at commit entry
    /// can tell a reader that finished *before* this transaction existed
    /// from a truly concurrent one; `0` (transaction begun while SSI was
    /// dormant) keeps the test fully conservative.
    begin: u64,
    /// `true` for transactions begun through
    /// [`ShardedKernel::begin_snapshot`].
    snapshot: bool,
    /// Someone holds an rw-antidependency *into* this transaction (a
    /// concurrent reader read a version this transaction overwrote), or a
    /// conservative approximation of one.
    in_conflict: bool,
    /// This transaction holds an rw-antidependency *out of* itself (it
    /// snapshot-read a version a concurrent transaction overwrote).
    out_conflict: bool,
    /// A dangerous structure formed around this live transaction while it
    /// was not in hand; it aborts itself at its next SSI interaction.
    doomed: bool,
    /// Commit stamp, set at claim time (a clock over-estimate, which can
    /// only flag more readers than strictly necessary — never fewer).
    committed: Option<u64>,
    /// The transaction pseudo-committed: it is guaranteed to commit and
    /// can no longer be chosen as the dangerous-structure victim.
    pseudo: bool,
    /// Objects this transaction snapshot-read (SIREAD cleanup list).
    reads: Vec<ObjectLoc>,
    /// Objects this transaction's commit writes (writer-entry cleanup
    /// list).
    writes: Vec<ObjectLoc>,
}

/// Coordinator-side SSI bookkeeping: SIREAD marks, writer entries and
/// per-transaction conflict flags, all behind one small mutex that is only
/// ever touched while at least one snapshot transaction is (or recently
/// was) live — [`ShardedKernel::ssi_enabled`] gates every entry point with
/// a single atomic load. The whole state clears at quiescence (no live
/// transactions at all), so purely classified workloads pay nothing.
///
/// Lock order: the enrollment lock may be held when taking this lock
/// (claim-time finalize); shard locks and this lock are **never** held
/// together.
#[derive(Debug, Default)]
struct SsiState {
    txns: HashMap<TxnId, SsiTxn>,
    /// SIREAD marks: per object, the snapshot transactions that read it.
    sireads: HashMap<ObjectLoc, Vec<TxnId>>,
    /// Writer entries: per object, transactions whose commit writes it.
    /// `None` = pending (commit entered but the fold's stamp is not final
    /// yet — readers must conservatively treat it as concurrent);
    /// `Some(stamp)` = committed at (at most) `stamp`.
    writers: HashMap<ObjectLoc, Vec<(TxnId, Option<u64>)>>,
}

/// Globally deduplicated transaction-lifecycle counters (one count per
/// transaction regardless of how many shards it touched).
#[derive(Debug, Default)]
struct Lifecycle {
    begun: AtomicU64,
    commits: AtomicU64,
    pseudo_commits: AtomicU64,
    aborts_deadlock: AtomicU64,
    aborts_commit_cycle: AtomicU64,
    aborts_victim: AtomicU64,
    aborts_ssi: AtomicU64,
    aborts_undeclared: AtomicU64,
    aborts_explicit: AtomicU64,
}

/// How a transaction terminated (internal bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TermFate {
    Committed,
    Aborted(AbortReason),
}

/// Side effects drained from one shard pass.
struct ShardFx {
    events: Vec<KernelEvent>,
    ready: Vec<TxnId>,
}

fn drain_fx(kernel: &mut SchedulerKernel) -> ShardFx {
    ShardFx {
        events: kernel.drain_events(),
        ready: kernel.drain_coordination_ready(),
    }
}

#[derive(Debug, Default)]
struct Registry {
    names: HashMap<String, ObjectId>,
    directory: Vec<ObjectLoc>,
}

/// N independent scheduler kernels plus the cross-shard coordinator. The
/// thread-safe, internally locked counterpart of [`SchedulerKernel`]; the
/// module documentation describes the protocol.
pub struct ShardedKernel {
    config: DatabaseConfig,
    shards: Vec<ShardCell>,
    global: Arc<GlobalGraph>,
    registry: Mutex<Registry>,
    enroll: Mutex<Enrollments>,
    /// Serializes multi-shard terminations (commit votes, coordinated
    /// commits and explicit multi-shard aborts) so per-shard commit orders
    /// stay mutually consistent.
    termination: Mutex<()>,
    /// Side-effect events collected across shards, drained by the caller
    /// exactly like [`SchedulerKernel::drain_events`].
    events: Mutex<Vec<KernelEvent>>,
    /// Lock-free emptiness hint for `events`: the request fast path (no
    /// side effects, the overwhelmingly common case) must not pay a mutex
    /// acquisition per call just to find the buffer empty.
    events_pending: AtomicU64,
    next_txn: AtomicU64,
    lifecycle: Lifecycle,
    /// The global commit clock, shared with every shard kernel
    /// ([`SchedulerKernel::attach_stamps`]): each actual commit draws one
    /// stamp, and multi-shard commits draw a *single* stamp under the
    /// termination lock so cross-shard snapshots never observe a
    /// half-applied multi-shard commit.
    commit_clock: Arc<AtomicU64>,
    /// The version-GC floor, shared with every shard kernel: the minimum
    /// begin stamp over live snapshot transactions (`u64::MAX` when none
    /// are live, letting commits drop superseded versions immediately).
    version_floor: Arc<AtomicU64>,
    /// Lock-free gate for the SSI machinery: non-zero while snapshot
    /// transactions may be live. Checked with one load on every request
    /// and commit so purely classified workloads never touch `ssi`.
    ssi_enabled: AtomicU64,
    /// SSI rw-antidependency bookkeeping (see [`SsiState`]).
    ssi: Mutex<SsiState>,
    /// The write-ahead log, attached once by [`crate::Database`] after
    /// replay (see [`Self::attach_wal`]). Registrations and multi-shard
    /// commits log through this handle; single-shard commits log through
    /// the per-shard kernels' own copies.
    wal: std::sync::OnceLock<Arc<sbcc_wal::Wal>>,
}

impl std::fmt::Debug for ShardedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedKernel")
            .field("shards", &self.shards.len())
            .field("objects", &self.registry.lock().directory.len())
            .finish()
    }
}

impl ShardedKernel {
    /// Build a sharded kernel: `config.shards` kernels sharing one
    /// escalation graph ([`ShardCount::Auto`] resolves to the available
    /// parallelism here).
    pub fn new(config: DatabaseConfig) -> Self {
        let shard_count = config.shards.resolve();
        assert!(shard_count >= 1, "at least one shard is required");
        let global = Arc::new(GlobalGraph::with_reorder(config.scheduler.reorder));
        let commit_clock = Arc::new(AtomicU64::new(0));
        let version_floor = Arc::new(AtomicU64::new(u64::MAX));
        let shards = (0..shard_count)
            .map(|_| {
                let mut kernel = SchedulerKernel::new(config.scheduler.clone());
                kernel.attach_escalation(global.clone());
                kernel.attach_stamps(commit_clock.clone(), version_floor.clone());
                ShardCell {
                    kernel: Mutex::new(kernel),
                    lock_acquisitions: AtomicU64::new(0),
                }
            })
            .collect();
        ShardedKernel {
            config,
            shards,
            global,
            registry: Mutex::new(Registry::default()),
            enroll: Mutex::new(Enrollments::default()),
            termination: Mutex::new(()),
            events: Mutex::new(Vec::new()),
            events_pending: AtomicU64::new(0),
            next_txn: AtomicU64::new(0),
            lifecycle: Lifecycle::default(),
            commit_clock,
            version_floor,
            ssi_enabled: AtomicU64::new(0),
            ssi: Mutex::new(SsiState::default()),
            wal: std::sync::OnceLock::new(),
        }
    }

    /// Attach the write-ahead log to the coordinator and to every shard
    /// kernel. Call **after** replaying the records [`sbcc_wal::Wal::open`]
    /// returned — from here on every registration and actual commit is
    /// appended, so attaching before replay would re-log the recovery.
    ///
    /// # Panics
    ///
    /// Panics if a log is already attached.
    pub fn attach_wal(&self, wal: Arc<sbcc_wal::Wal>) {
        for (i, _) in self.shards.iter().enumerate() {
            self.peek_shard(i as u32).attach_wal(wal.clone(), i as u32);
        }
        assert!(
            self.wal.set(wal).is_ok(),
            "a write-ahead log is already attached"
        );
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&Arc<sbcc_wal::Wal>> {
        self.wal.get()
    }

    /// The configuration.
    pub fn config(&self) -> &DatabaseConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn lock_shard(&self, shard: u32) -> MutexGuard<'_, SchedulerKernel> {
        let cell = &self.shards[shard as usize];
        cell.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        cell.kernel.lock()
    }

    /// Lock a shard for inspection without perturbing the lock counter.
    fn peek_shard(&self, shard: u32) -> MutexGuard<'_, SchedulerKernel> {
        self.shards[shard as usize].kernel.lock()
    }

    // ------------------------------------------------------------------
    // Object registration and inspection
    // ------------------------------------------------------------------

    /// Register an erased semantic object; its shard is
    /// `shard_of_name(name, shards)`. Returns the **global** object id
    /// (dense, in registration order) and its location.
    pub fn register_object(
        &self,
        name: impl Into<String>,
        object: Box<dyn SemanticObject>,
    ) -> Result<(ObjectId, ObjectLoc), CoreError> {
        let name = name.into();
        let mut registry = self.registry.lock();
        if registry.names.contains_key(&name) {
            return Err(CoreError::DuplicateObject(name));
        }
        // Semantic logging can only recover objects it can reconstruct:
        // the type must be known to the factory and the initial state must
        // be the factory's empty state (the log records operations, never
        // a starting state).
        let type_name = object.type_name();
        if self.wal.get().is_some() {
            match sbcc_wal::factory::instantiate(type_name) {
                None => {
                    return Err(CoreError::Durability(format!(
                        "object {name:?} has type {type_name:?}, which the recovery \
                         factory cannot reconstruct; durable databases accept only \
                         the built-in table-driven types"
                    )))
                }
                Some(fresh) if !object.state_eq(fresh.as_ref()) => {
                    return Err(CoreError::Durability(format!(
                        "object {name:?} starts with a non-empty state; the log \
                         records operations only, so a durable database cannot \
                         recover a pre-populated object"
                    )))
                }
                Some(_) => {}
            }
        }
        let shard = shard_of_name(&name, self.shards.len());
        let local = self.peek_shard(shard).register_object(name.clone(), object)?;
        if let Some(wal) = self.wal.get() {
            // Flushed at append: no commit record referencing this object
            // may become durable before the registration.
            wal.append_register(shard, &name, type_name);
        }
        let global = ObjectId(registry.directory.len() as u32);
        let loc = ObjectLoc { shard, local };
        registry.directory.push(loc);
        registry.names.insert(name, global);
        Ok((global, loc))
    }

    /// Register a typed atomic data type instance.
    pub fn register<A: AdtSpec>(
        &self,
        name: impl Into<String>,
        adt: A,
    ) -> Result<(ObjectId, ObjectLoc), CoreError> {
        self.register_object(name, Box::new(AdtObject::new(adt)))
    }

    /// Number of registered objects (across all shards).
    pub fn object_count(&self) -> usize {
        self.registry.lock().directory.len()
    }

    /// Resolve an object name to its global id.
    pub fn object_id(&self, name: &str) -> Option<ObjectId> {
        self.registry.lock().names.get(name).copied()
    }

    /// The location of a global object id.
    pub fn object_loc(&self, object: ObjectId) -> Option<ObjectLoc> {
        self.registry.lock().directory.get(object.0 as usize).copied()
    }

    /// Run a closure against an object's committed state (under its
    /// shard's lock).
    pub fn with_object_committed<R>(
        &self,
        object: ObjectId,
        f: impl FnOnce(&dyn SemanticObject) -> R,
    ) -> Option<R> {
        let loc = self.object_loc(object)?;
        let kernel = self.peek_shard(loc.shard);
        kernel.object_committed_state(loc.local).map(f)
    }

    /// Run a closure against one shard's kernel (tests / diagnostics).
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut SchedulerKernel) -> R) -> R {
        let mut kernel = self.peek_shard(shard as u32);
        f(&mut kernel)
    }

    // ------------------------------------------------------------------
    // Transaction life cycle
    // ------------------------------------------------------------------

    /// Begin a transaction. The id is assigned globally; shards adopt it
    /// lazily on first touch.
    pub fn begin(&self) -> TxnId {
        let id = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed) + 1);
        self.enroll.lock().live.insert(id, EnrollRec::default());
        self.lifecycle.begun.fetch_add(1, Ordering::Relaxed);
        if self.ssi_enabled.load(Ordering::SeqCst) != 0 {
            // Stamp the begin while snapshots are live: the SIREAD scan at
            // commit entry skips readers that committed at or below this
            // stamp (they finished before this transaction did anything,
            // so no rw-antidependency between concurrent transactions can
            // involve them). Without the stamp a committed-but-flagged
            // reader's marks would doom every later writer that touches
            // its read set until full quiescence — retried transactions
            // would starve in an abort storm. The enroll insert above
            // happens first, so the quiescence sweep (which requires an
            // empty live set) can never clear this record out from under
            // us.
            let begin = self.commit_clock.load(Ordering::SeqCst);
            self.ssi.lock().txns.insert(
                id,
                SsiTxn {
                    begin,
                    ..SsiTxn::default()
                },
            );
        }
        id
    }

    /// Begin a **snapshot** transaction: its read-only operations observe
    /// the newest committed version at or below the returned begin stamp,
    /// without classification or blocking, and serializability is guarded
    /// by SSI rw-antidependency tracking (a dangerous structure aborts the
    /// pivot with [`AbortReason::SsiConflict`]). Non-read-only operations
    /// still go through the ordinary classified path.
    ///
    /// The stamp is acquired under the termination lock: a multi-shard
    /// commit draws its single stamp and applies every per-shard fold
    /// under that same lock, so no snapshot can begin between the folds —
    /// cross-shard snapshots never see a half-applied multi-shard commit.
    pub fn begin_snapshot(&self) -> (TxnId, u64) {
        let id = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed) + 1);
        self.lifecycle.begun.fetch_add(1, Ordering::Relaxed);
        let _termination = self.termination.lock();
        self.enroll.lock().live.insert(id, EnrollRec::default());
        chaos::reach(ChaosPoint::SnapshotStamp, Some(id));
        let provisional = self.commit_clock.load(Ordering::SeqCst);
        {
            let mut ssi = self.ssi.lock();
            ssi.txns.insert(
                id,
                SsiTxn {
                    begin: provisional,
                    snapshot: true,
                    ..SsiTxn::default()
                },
            );
            let floor = ssi
                .txns
                .values()
                .filter(|t| t.snapshot && t.committed.is_none())
                .map(|t| t.begin)
                .min()
                .unwrap_or(provisional);
            self.version_floor.store(floor, Ordering::SeqCst);
            self.ssi_enabled.store(1, Ordering::SeqCst);
        }
        // Re-read the clock *after* publishing the floor: every commit
        // folds by first drawing its stamp (`fetch_add`) and then loading
        // the floor, so in the SeqCst total order any fold stamped above
        // this begin loads the floor after the store above and prunes at
        // or below it — the version this snapshot needs can never be
        // dropped out from under it. (A fold stamped at or below the
        // begin may see the old floor, which is harmless: its result is
        // part of the snapshot.)
        let begin = self.commit_clock.load(Ordering::SeqCst);
        if begin != provisional {
            self.ssi
                .lock()
                .txns
                .get_mut(&id)
                .expect("snapshot record was just inserted")
                .begin = begin;
        }
        (id, begin)
    }

    fn missing_txn_error(
        enroll: &Enrollments,
        txn: TxnId,
        action: &'static str,
    ) -> CoreError {
        match enroll.finished.get(&txn) {
            Some(state) => CoreError::InvalidState {
                txn,
                state: *state,
                action,
            },
            None => CoreError::UnknownTransaction(txn),
        }
    }

    /// Enroll `txn` into `shard` if it is not enrolled yet, entangling the
    /// affected shards when the transaction becomes multi-shard. Returns
    /// `true` when this call performed the enrollment (the session layer
    /// caches this to skip the coordinator on repeat touches).
    pub fn ensure_enrolled(
        &self,
        txn: TxnId,
        shard: u32,
        action: &'static str,
    ) -> Result<bool, CoreError> {
        let mut enroll = self.enroll.lock();
        let Some(rec) = enroll.live.get_mut(&txn) else {
            return Err(Self::missing_txn_error(&enroll, txn, action));
        };
        if rec.shards.contains(&shard) {
            return Ok(false);
        }
        let becoming_multi = rec.shards.len() == 1;
        let already_multi = rec.shards.len() >= 2;
        let first = rec.shards.first().copied();
        rec.shards.push(shard);
        if becoming_multi {
            // The transaction spans shards from now on: mark it coordinated
            // where it already lives, and entangle both shards so their
            // edges are visible to escalated cycle checks.
            let first = first.expect("becoming multi implies a first shard");
            {
                let mut kernel = self.lock_shard(first);
                kernel.mark_coordinated(txn);
                kernel.entangle();
            }
            let mut kernel = self.lock_shard(shard);
            kernel.adopt(txn, true);
            kernel.entangle();
        } else if already_multi {
            let mut kernel = self.lock_shard(shard);
            kernel.adopt(txn, true);
            kernel.entangle();
        } else {
            self.lock_shard(shard).adopt(txn, false);
        }
        Ok(true)
    }

    /// The current state of a transaction. `Blocked` wins over `Active`
    /// across shards (a transaction blocks in at most one shard — it has
    /// at most one in-flight request).
    pub fn txn_state(&self, txn: TxnId) -> Option<TxnState> {
        let shards = {
            let enroll = self.enroll.lock();
            if let Some(state) = enroll.finished.get(&txn) {
                return Some(*state);
            }
            let rec = enroll.live.get(&txn)?;
            if rec.shards.is_empty() {
                return Some(TxnState::Active);
            }
            rec.shards.clone()
        };
        let mut state = TxnState::Active;
        for s in shards {
            match self.peek_shard(s).txn_state(txn) {
                Some(TxnState::Blocked) => return Some(TxnState::Blocked),
                Some(TxnState::PseudoCommitted) => state = TxnState::PseudoCommitted,
                _ => {}
            }
        }
        Some(state)
    }

    /// The union of the transaction's commit dependencies across shards.
    pub fn commit_dependencies_of(&self, txn: TxnId) -> Vec<TxnId> {
        let shards = {
            let enroll = self.enroll.lock();
            enroll.live.get(&txn).map(|r| r.shards.clone()).unwrap_or_default()
        };
        let mut deps: Vec<TxnId> = Vec::new();
        for s in shards {
            deps.extend(self.peek_shard(s).commit_dependencies_of(txn));
        }
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    /// Drain the side-effect events collected across shards (same
    /// semantics as [`SchedulerKernel::drain_events`]).
    ///
    /// A thread that published events always drains after publishing, so
    /// the lock-free empty fast path cannot strand an event: at worst a
    /// *concurrent* caller misses events another thread is about to drain
    /// anyway.
    pub fn drain_events(&self) -> Vec<KernelEvent> {
        if self.events_pending.load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        let mut events = self.events.lock();
        self.events_pending.store(0, Ordering::Release);
        std::mem::take(&mut *events)
    }

    /// Publish side-effect events for [`Self::drain_events`].
    fn publish_events(&self, events: Vec<KernelEvent>) {
        if events.is_empty() {
            return;
        }
        let mut buf = self.events.lock();
        buf.extend(events);
        self.events_pending
            .store(buf.len() as u64, Ordering::Release);
    }

    // ------------------------------------------------------------------
    // Requests
    // ------------------------------------------------------------------

    /// Request an operation by global object id (resolves the shard
    /// through the directory; sessions use [`Self::request_located`] with
    /// the handle-resident location instead).
    pub fn request(
        &self,
        txn: TxnId,
        object: ObjectId,
        call: OpCall,
    ) -> Result<RequestOutcome, CoreError> {
        let loc = self
            .object_loc(object)
            .ok_or_else(|| CoreError::UnknownObject(format!("{object}")))?;
        self.request_located(txn, loc, call)
    }

    /// Request an operation at a known location (enrolls on first touch).
    pub fn request_located(
        &self,
        txn: TxnId,
        loc: ObjectLoc,
        call: OpCall,
    ) -> Result<RequestOutcome, CoreError> {
        self.ensure_enrolled(txn, loc.shard, "request an operation")?;
        self.request_enrolled(txn, loc, call)
    }

    /// Request an operation for a transaction known to be enrolled in the
    /// target shard (the session layer's cached fast path: no coordinator
    /// lock, one shard lock).
    pub fn request_enrolled(
        &self,
        txn: TxnId,
        loc: ObjectLoc,
        call: OpCall,
    ) -> Result<RequestOutcome, CoreError> {
        let ssi_on = self.ssi_enabled.load(Ordering::SeqCst) != 0;
        let (result, fx, object_stamp) = {
            let mut kernel = self.lock_shard(loc.shard);
            let result = kernel.request(txn, loc.local, call);
            // Read the object's committed stamp under the same lock hold:
            // the late concurrent-write check in `ssi_note_classified`
            // compares it against the snapshot's begin stamp.
            let object_stamp = if ssi_on {
                kernel.object_commit_stamp(loc.local)
            } else {
                None
            };
            let fx = drain_fx(&mut kernel);
            (result, fx, object_stamp)
        };
        if let (Some(stamp), Ok(outcome)) = (object_stamp, &result) {
            self.ssi_note_classified(txn, outcome, stamp);
        }
        let requester = match &result {
            Ok(RequestOutcome::Aborted { reason }) => Some((txn, *reason)),
            _ => None,
        };
        self.absorb(loc.shard, requester, fx);
        result
    }

    /// Grouped submission across shards: the batch is split into maximal
    /// same-shard runs, each classified by its shard in one pass
    /// ([`SchedulerKernel::request_batch`]), strictly in submission order.
    /// The documented partial-admission semantics of [`BatchOutcome`] are
    /// preserved: indices in the outcome refer to the submitted batch, and
    /// a blocking or aborting terminator hands back the unprocessed suffix
    /// (including the untouched later runs).
    pub fn request_batch(
        &self,
        txn: TxnId,
        calls: Vec<BatchCall>,
    ) -> Result<BatchOutcome, CoreError> {
        let locs: Result<Vec<ObjectLoc>, CoreError> = calls
            .iter()
            .map(|bc| {
                self.object_loc(bc.object)
                    .ok_or_else(|| CoreError::UnknownObject(format!("{}", bc.object)))
            })
            .collect();
        self.request_batch_located(txn, calls, locs?)
    }

    /// [`Self::request_batch`] with pre-resolved locations (`locs[i]` must
    /// locate `calls[i].object`).
    pub fn request_batch_located(
        &self,
        txn: TxnId,
        calls: Vec<BatchCall>,
        locs: Vec<ObjectLoc>,
    ) -> Result<BatchOutcome, CoreError> {
        self.request_batch_inner(txn, calls, locs, true, None)
    }

    /// [`Self::request_batch_located`] for a transaction the caller has
    /// already enrolled in every touched shard (the session layer's cached
    /// fast path — no coordinator lock per shard run).
    pub fn request_batch_enrolled(
        &self,
        txn: TxnId,
        calls: Vec<BatchCall>,
        locs: Vec<ObjectLoc>,
    ) -> Result<BatchOutcome, CoreError> {
        self.request_batch_inner(txn, calls, locs, false, None)
    }

    /// [`Self::request_batch_located`] with a **declared** read/write
    /// footprint: each same-shard run is handed its projection of the
    /// declaration and goes through
    /// [`SchedulerKernel::request_batch_declared`] — group admission when
    /// the declared footprint is quiescent, classifier fallback/escalation
    /// (or an [`AbortReason::UndeclaredAccess`] abort, per policy)
    /// otherwise.
    pub fn request_batch_declared(
        &self,
        txn: TxnId,
        calls: Vec<BatchCall>,
        locs: Vec<ObjectLoc>,
        declared: &sbcc_adt::AccessSet<ObjectLoc>,
    ) -> Result<BatchOutcome, CoreError> {
        self.request_batch_inner(txn, calls, locs, true, Some(declared))
    }

    /// [`Self::request_batch_declared`] for a transaction already enrolled
    /// in every touched shard.
    pub fn request_batch_declared_enrolled(
        &self,
        txn: TxnId,
        calls: Vec<BatchCall>,
        locs: Vec<ObjectLoc>,
        declared: &sbcc_adt::AccessSet<ObjectLoc>,
    ) -> Result<BatchOutcome, CoreError> {
        self.request_batch_inner(txn, calls, locs, false, Some(declared))
    }

    fn request_batch_inner(
        &self,
        txn: TxnId,
        mut calls: Vec<BatchCall>,
        locs: Vec<ObjectLoc>,
        enroll: bool,
        declared: Option<&sbcc_adt::AccessSet<ObjectLoc>>,
    ) -> Result<BatchOutcome, CoreError> {
        assert_eq!(calls.len(), locs.len(), "one location per call");
        if calls.is_empty() {
            // Mirror the kernel's validation without enrolling anywhere.
            let enroll = self.enroll.lock();
            if !enroll.live.contains_key(&txn) {
                return Err(Self::missing_txn_error(&enroll, txn, "submit a batch"));
            }
            return Ok(BatchOutcome {
                executed: Vec::new(),
                commit_deps: Vec::new(),
                stopped: None,
            });
        }
        if self.ssi_enabled.load(Ordering::SeqCst) != 0 {
            self.ssi_note_batch(txn);
        }
        let total = calls.len();
        let mut executed = Vec::with_capacity(total);
        let mut all_deps: Vec<TxnId> = Vec::new();
        let mut start = 0usize;
        while start < total {
            let shard = locs[start].shard;
            let mut end = start + 1;
            while end < total && locs[end].shard == shard {
                end += 1;
            }
            if enroll {
                self.ensure_enrolled(txn, shard, "submit a batch")?;
            }
            // Localize the run by moving the payloads out of the original
            // slots (the suffix after a stop is reconstructed below).
            let run: Vec<BatchCall> = (start..end)
                .map(|i| {
                    BatchCall::new(
                        locs[i].local,
                        std::mem::replace(&mut calls[i].call, OpCall::nullary(0)),
                    )
                })
                .collect();
            // Project the declaration onto this shard (other shards'
            // declared objects are simply invisible here) before taking
            // the lock; the whole group-admission window — coverage scan,
            // disjointness scan, group execution — runs under one hold.
            let local_declared =
                declared.map(|d| d.project(|loc| (loc.shard == shard).then_some(loc.local)));
            if local_declared.is_some() {
                chaos::reach(ChaosPoint::GroupAdmit, Some(txn));
            }
            let (result, fx) = {
                let mut kernel = self.lock_shard(shard);
                let result = match &local_declared {
                    Some(d) => kernel.request_batch_declared(txn, run, d),
                    None => kernel.request_batch(txn, run),
                };
                let fx = drain_fx(&mut kernel);
                (result, fx)
            };
            let outcome = match result {
                Ok(o) => o,
                Err(e) => {
                    self.absorb(shard, None, fx);
                    return Err(e);
                }
            };
            executed.extend(outcome.executed);
            all_deps.extend(outcome.commit_deps);
            let stopped = match outcome.stopped {
                None => {
                    self.absorb(shard, None, fx);
                    start = end;
                    continue;
                }
                Some(s) => s,
            };
            all_deps.sort_unstable();
            all_deps.dedup();
            let (index, rest_local, requester, stop) = match stopped {
                BatchStop::Blocked {
                    index,
                    waiting_on,
                    rest,
                } => {
                    let g = start + index;
                    (g, rest, None, BatchStop::Blocked {
                        index: g,
                        waiting_on,
                        rest: Vec::new(),
                    })
                }
                BatchStop::Aborted { index, reason, rest } => {
                    let g = start + index;
                    (g, rest, Some((txn, reason)), BatchStop::Aborted {
                        index: g,
                        reason,
                        rest: Vec::new(),
                    })
                }
            };
            // Re-globalize the run's unprocessed suffix, then append the
            // untouched later runs.
            let mut rest_out: Vec<BatchCall> = rest_local
                .into_iter()
                .enumerate()
                .map(|(i, bc)| BatchCall::new(calls[index + 1 + i].object, bc.call))
                .collect();
            rest_out.extend(calls.drain(end..));
            self.absorb(shard, requester, fx);
            let stop = match stop {
                BatchStop::Blocked { index, waiting_on, .. } => BatchStop::Blocked {
                    index,
                    waiting_on,
                    rest: rest_out,
                },
                BatchStop::Aborted { index, reason, .. } => BatchStop::Aborted {
                    index,
                    reason,
                    rest: rest_out,
                },
            };
            return Ok(BatchOutcome {
                executed,
                commit_deps: all_deps,
                stopped: Some(stop),
            });
        }
        all_deps.sort_unstable();
        all_deps.dedup();
        Ok(BatchOutcome {
            executed,
            commit_deps: all_deps,
            stopped: None,
        })
    }

    // ------------------------------------------------------------------
    // Termination
    // ------------------------------------------------------------------

    /// Commit a transaction. Single-shard transactions take the unsharded
    /// fast path inside their shard; multi-shard transactions run the
    /// cross-shard vote described in the module documentation.
    pub fn commit(&self, txn: TxnId) -> Result<CommitOutcome, CoreError> {
        let enrolled: Vec<u32> = {
            let enroll = self.enroll.lock();
            match enroll.live.get(&txn) {
                Some(rec) => {
                    if rec.pseudo {
                        return Err(CoreError::InvalidState {
                            txn,
                            state: TxnState::PseudoCommitted,
                            action: "commit",
                        });
                    }
                    rec.shards.clone()
                }
                None => return Err(Self::missing_txn_error(&enroll, txn, "commit")),
            }
        };
        // SSI commit-entry gate: decide dangerous structures and publish
        // the writer entries *before* any shard applies the commit (a
        // pseudo-commit is a promise, so nothing may be vetoed after it).
        if self.ssi_enabled.load(Ordering::SeqCst) != 0 {
            self.ssi_commit_entry(txn, &enrolled)?;
        }
        match enrolled.len() {
            0 => {
                // The transaction never touched an object: a trivially
                // empty commit.
                if self.claim(txn, TermFate::Committed).is_some() {
                    self.count_termination(TermFate::Committed);
                }
                Ok(CommitOutcome::Committed)
            }
            1 => {
                let shard = enrolled[0];
                let (result, fx, wal_ticket) = {
                    let mut kernel = self.lock_shard(shard);
                    let result = kernel.commit(txn);
                    // The ticket must be read under the shard lock: it is
                    // assigned inside `actually_commit`.
                    let wal_ticket = kernel.wal_ticket_of(txn);
                    let fx = drain_fx(&mut kernel);
                    (result, fx, wal_ticket)
                };
                match &result {
                    Ok(CommitOutcome::Committed) => {
                        if self.claim(txn, TermFate::Committed).is_some() {
                            self.count_termination(TermFate::Committed);
                        }
                    }
                    Ok(CommitOutcome::PseudoCommitted { .. }) => {
                        if let Some(rec) = self.enroll.lock().live.get_mut(&txn) {
                            rec.pseudo = true;
                        }
                        self.ssi_mark_pseudo(txn);
                        self.lifecycle.pseudo_commits.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {}
                }
                self.absorb(shard, None, fx);
                // Durability gate: a `Committed` acknowledgement promises
                // the commit record is flushed per the fsync policy. Waits
                // only under group commit, after every lock is released —
                // other sessions keep executing while this one waits for
                // the flusher. (A `PseudoCommitted` acknowledgement makes
                // no durability promise: the record is appended later, by
                // whichever thread clears the last dependency.)
                if let (Some(wal), Some(ticket)) = (self.wal.get(), wal_ticket) {
                    wal.wait_durable(shard, ticket);
                }
                result
            }
            _ => self.commit_multi(txn, &enrolled),
        }
    }

    fn commit_multi(&self, txn: TxnId, enrolled: &[u32]) -> Result<CommitOutcome, CoreError> {
        let mut fxs: Vec<(u32, ShardFx)> = Vec::new();
        let outcome = {
            let _termination = self.termination.lock();
            // Phase 1: collect per-shard votes (local commit-dependency
            // out-neighbours). The transaction stays Active throughout —
            // it is coordinated, so it can neither be picked as a cycle
            // victim nor be terminated by anyone but this (its own
            // session's) thread.
            let mut deps: Vec<TxnId> = Vec::new();
            for &s in enrolled {
                // Between two per-shard vote collections: other sessions
                // can still execute/abort inside not-yet-peeked shards.
                chaos::reach(ChaosPoint::VotePeek, Some(txn));
                let kernel = self.peek_shard(s);
                match kernel.txn_state(txn) {
                    Some(TxnState::Active) => deps.extend(kernel.commit_dependencies_of(txn)),
                    Some(state) => {
                        return Err(CoreError::InvalidState {
                            txn,
                            state,
                            action: "commit",
                        })
                    }
                    None => return Err(CoreError::UnknownTransaction(txn)),
                }
            }
            deps.sort_unstable();
            deps.dedup();
            if deps.is_empty() {
                // Durability first: the transaction's fragments and the
                // cross-shard marker must be on disk before any shard
                // applies the commit in-memory, or a crash between the
                // per-shard applications could acknowledge state the log
                // cannot reproduce.
                self.wal_log_multi(txn, enrolled);
                // Phase 2a: unanimous — apply the actual commit shard by
                // shard (the termination lock keeps the per-shard commit
                // orders of concurrent multi-shard commits consistent).
                // One stamp for every shard's fold, drawn under the
                // termination lock: snapshot begins also serialize
                // against this lock, so the multi-shard commit is
                // atomic from every snapshot's point of view.
                let stamp = self.commit_clock.fetch_add(1, Ordering::SeqCst) + 1;
                for &s in enrolled {
                    // Between two per-shard applications the transaction
                    // is committed in a prefix of its shards only.
                    chaos::reach(ChaosPoint::VoteApply, Some(txn));
                    let mut kernel = self.lock_shard(s);
                    kernel.commit_coordinated(txn, stamp);
                    let fx = drain_fx(&mut kernel);
                    drop(kernel);
                    fxs.push((s, fx));
                }
                if self.claim(txn, TermFate::Committed).is_some() {
                    self.count_termination(TermFate::Committed);
                }
                CommitOutcome::Committed
            } else {
                // Phase 2b: outstanding dependencies — pseudo-commit in
                // every shard; re-voted when a shard's local out-degree
                // drops to zero.
                self.ssi_mark_pseudo(txn);
                for &s in enrolled {
                    let mut kernel = self.lock_shard(s);
                    let marked = kernel.pseudo_commit_coordinated(txn);
                    debug_assert!(marked, "coordinated pseudo-commit of a non-active txn");
                    // The dependencies this vote saw may have terminated
                    // while the per-shard locks were being taken; draining
                    // fx here picks up the immediate coordination-ready
                    // signal `pseudo_commit_coordinated` emits in that case
                    // (the re-vote runs in the absorb pass below, after the
                    // termination lock is released).
                    let fx = drain_fx(&mut kernel);
                    drop(kernel);
                    fxs.push((s, fx));
                }
                if let Some(rec) = self.enroll.lock().live.get_mut(&txn) {
                    rec.pseudo = true;
                }
                self.lifecycle.pseudo_commits.fetch_add(1, Ordering::Relaxed);
                CommitOutcome::PseudoCommitted { waiting_on: deps }
            }
        };
        for (shard, fx) in fxs {
            self.absorb(shard, None, fx);
        }
        Ok(outcome)
    }

    /// Explicitly abort an active or blocked transaction (all shards).
    pub fn abort(&self, txn: TxnId) -> Result<(), CoreError> {
        let enrolled: Vec<u32> = {
            let enroll = self.enroll.lock();
            match enroll.live.get(&txn) {
                Some(rec) => {
                    if rec.pseudo {
                        return Err(CoreError::InvalidState {
                            txn,
                            state: TxnState::PseudoCommitted,
                            action: "abort",
                        });
                    }
                    rec.shards.clone()
                }
                None => return Err(Self::missing_txn_error(&enroll, txn, "abort")),
            }
        };
        match enrolled.len() {
            0 => {
                if self.claim(txn, TermFate::Aborted(AbortReason::Explicit)).is_some() {
                    self.count_termination(TermFate::Aborted(AbortReason::Explicit));
                }
                Ok(())
            }
            1 => {
                let shard = enrolled[0];
                let (result, fx) = {
                    let mut kernel = self.lock_shard(shard);
                    let result = kernel.abort(txn);
                    let fx = drain_fx(&mut kernel);
                    (result, fx)
                };
                if result.is_ok()
                    && self.claim(txn, TermFate::Aborted(AbortReason::Explicit)).is_some()
                {
                    self.count_termination(TermFate::Aborted(AbortReason::Explicit));
                }
                self.absorb(shard, None, fx);
                result
            }
            _ => {
                let mut fxs: Vec<(u32, ShardFx)> = Vec::new();
                {
                    let _termination = self.termination.lock();
                    for &s in &enrolled {
                        let mut kernel = self.lock_shard(s);
                        kernel.abort_coordinated(txn, AbortReason::Explicit);
                        let fx = drain_fx(&mut kernel);
                        drop(kernel);
                        fxs.push((s, fx));
                    }
                }
                if self.claim(txn, TermFate::Aborted(AbortReason::Explicit)).is_some() {
                    self.count_termination(TermFate::Aborted(AbortReason::Explicit));
                }
                for (shard, fx) in fxs {
                    self.absorb(shard, None, fx);
                }
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Snapshot reads and SSI
    // ------------------------------------------------------------------

    /// Execute a read-only operation for a snapshot transaction against
    /// the newest committed version at or below its begin stamp — no
    /// classification, no blocking, no dependency-graph edges.
    ///
    /// Returns `Ok(None)` when the call is **not** a pure observer, or
    /// when the transaction has its own uncommitted operations on the
    /// object: the caller falls back to the classified path (which
    /// provides read-your-writes).
    pub fn snapshot_read(
        &self,
        txn: TxnId,
        loc: ObjectLoc,
        call: &OpCall,
    ) -> Result<Option<sbcc_adt::OpResult>, CoreError> {
        let (begin, danger) = {
            let ssi = self.ssi.lock();
            match ssi.txns.get(&txn) {
                Some(r) if r.snapshot => {
                    (r.begin, r.doomed || (r.in_conflict && r.out_conflict))
                }
                _ => {
                    drop(ssi);
                    let enroll = self.enroll.lock();
                    return Err(Self::missing_txn_error(&enroll, txn, "snapshot-read"));
                }
            }
        };
        if danger {
            // A dangerous structure formed around this transaction while
            // it was away (another pivot doomed it, or its own sticky
            // flags closed): abort before handing out another read.
            return Err(self.ssi_abort(txn));
        }
        chaos::reach(ChaosPoint::SnapshotRead, Some(txn));
        let result = {
            let mut kernel = self.lock_shard(loc.shard);
            kernel.snapshot_read(txn, loc.local, begin, call)?
        };
        let Some(result) = result else {
            return Ok(None);
        };
        // Install the SIREAD mark and the rw-antidependency out-edges:
        // every writer entry that is pending, or stamped above the begin,
        // wrote a version this read did not see.
        chaos::reach(ChaosPoint::SsiEdge, Some(txn));
        let mut doom_self = false;
        {
            let mut ssi = self.ssi.lock();
            if !ssi.txns.contains_key(&txn) {
                // Aborted concurrently (e.g. victim selection in a shard
                // it writes in); surface the terminated-transaction error
                // the classified path would produce.
                drop(ssi);
                let enroll = self.enroll.lock();
                return Err(Self::missing_txn_error(&enroll, txn, "snapshot-read"));
            }
            let flagged: Vec<TxnId> = ssi
                .writers
                .get(&loc)
                .map(|entries| {
                    entries
                        .iter()
                        .filter(|(w, stamp)| {
                            *w != txn && stamp.map_or(true, |s| s > begin)
                        })
                        .map(|(w, _)| *w)
                        .collect()
                })
                .unwrap_or_default();
            {
                let rec = ssi.txns.get_mut(&txn).expect("checked above");
                if !rec.reads.contains(&loc) {
                    rec.reads.push(loc);
                }
                if !flagged.is_empty() {
                    rec.out_conflict = true;
                    if rec.in_conflict {
                        doom_self = true;
                    }
                }
            }
            for w in flagged {
                let Some(wrec) = ssi.txns.get_mut(&w) else { continue };
                wrec.in_conflict = true;
                if wrec.out_conflict {
                    // Dangerous structure pivoting at the writer: a live
                    // writer aborts itself at its next SSI interaction;
                    // an unabortable one (pseudo- or fully committed)
                    // forces this reader out instead.
                    if wrec.committed.is_none() && !wrec.pseudo {
                        wrec.doomed = true;
                    } else {
                        doom_self = true;
                    }
                }
            }
            let readers = ssi.sireads.entry(loc).or_default();
            if !readers.contains(&txn) {
                readers.push(txn);
            }
        }
        if doom_self {
            return Err(self.ssi_abort(txn));
        }
        Ok(Some(result))
    }

    /// The begin stamp of a live snapshot transaction.
    pub fn snapshot_begin_stamp(&self, txn: TxnId) -> Option<u64> {
        let ssi = self.ssi.lock();
        ssi.txns.get(&txn).filter(|r| r.snapshot).map(|r| r.begin)
    }

    /// The current value of the global commit clock.
    pub fn current_stamp(&self) -> u64 {
        self.commit_clock.load(Ordering::SeqCst)
    }

    /// The current version-GC floor: the smallest begin stamp of a live
    /// snapshot transaction, or `None` when none is live (commits then
    /// drop superseded versions immediately).
    pub fn oldest_snapshot_stamp(&self) -> Option<u64> {
        let floor = self.version_floor.load(Ordering::SeqCst);
        (floor != u64::MAX).then_some(floor)
    }

    /// Total number of retained historical versions across all shards.
    pub fn version_depth(&self) -> usize {
        self.shards
            .iter()
            .map(|cell| cell.kernel.lock().version_depth())
            .sum()
    }

    /// Sweep every shard, pruning historical versions below the current
    /// GC floor. Returns the number of versions dropped. Commits prune
    /// their own objects as they fold, so this is only needed to reclaim
    /// versions of *cold* objects after the oldest snapshot finishes.
    pub fn prune_versions(&self) -> u64 {
        let watermark = self.version_floor.load(Ordering::SeqCst);
        self.shards
            .iter()
            .map(|cell| cell.kernel.lock().prune_versions(watermark))
            .sum()
    }

    /// SSI bookkeeping for a classified operation while snapshots are
    /// live: a snapshot transaction that blocks, picks up commit
    /// dependencies, or classifies against an object some transaction
    /// committed into after the snapshot began is conservatively marked
    /// in-conflict (a concurrent transaction may have observed state this
    /// one is about to overwrite). Flags are sticky; enforcement happens
    /// at the next snapshot read or at commit entry.
    fn ssi_note_classified(&self, txn: TxnId, outcome: &RequestOutcome, object_stamp: u64) {
        let mut ssi = self.ssi.lock();
        let Some(rec) = ssi.txns.get_mut(&txn) else { return };
        if !rec.snapshot {
            return;
        }
        let flag = match outcome {
            RequestOutcome::Blocked { .. } => true,
            RequestOutcome::Executed { commit_deps, .. } => {
                !commit_deps.is_empty() || object_stamp > rec.begin
            }
            RequestOutcome::Aborted { .. } => false,
        };
        if flag {
            rec.in_conflict = true;
        }
    }

    /// Batched classified submission by a snapshot transaction: marked
    /// in-conflict unconditionally (a documented simplification — the
    /// per-call outcomes inside a batch are not individually re-derived
    /// here, so the conservative flag stands in for all of them).
    fn ssi_note_batch(&self, txn: TxnId) {
        let mut ssi = self.ssi.lock();
        if let Some(rec) = ssi.txns.get_mut(&txn) {
            if rec.snapshot {
                rec.in_conflict = true;
            }
        }
    }

    /// Record that `txn` pseudo-committed: from here on it can no longer
    /// be chosen as a dangerous-structure victim (the in-hand transaction
    /// aborts instead).
    fn ssi_mark_pseudo(&self, txn: TxnId) {
        if self.ssi_enabled.load(Ordering::SeqCst) == 0 {
            return;
        }
        let mut ssi = self.ssi.lock();
        if let Some(rec) = ssi.txns.get_mut(&txn) {
            rec.pseudo = true;
        }
    }

    /// SSI commit-entry gate, run **before** any shard applies the commit:
    /// publish pending writer entries for the transaction's write set,
    /// scan the SIREAD marks of every written object for
    /// rw-antidependency in-edges, and abort the pivot of any dangerous
    /// structure this closes. Aborts `txn` (returning the error) when the
    /// pivot is `txn` itself or is unabortable.
    fn ssi_commit_entry(&self, txn: TxnId, enrolled: &[u32]) -> Result<(), CoreError> {
        // Collect the write set first: shard locks and the SSI lock are
        // never held together.
        let mut writes: Vec<ObjectLoc> = Vec::new();
        for &s in enrolled {
            for local in self.peek_shard(s).write_set(txn) {
                writes.push(ObjectLoc { shard: s, local });
            }
        }
        chaos::reach(ChaosPoint::SsiEdge, Some(txn));
        let mut doom_self = false;
        {
            let mut ssi = self.ssi.lock();
            let (snapshot, begin) = match ssi.txns.get(&txn) {
                Some(r) => {
                    if r.snapshot && (r.doomed || (r.in_conflict && r.out_conflict)) {
                        doom_self = true;
                    }
                    (r.snapshot, r.begin)
                }
                None => (false, 0),
            };
            if !doom_self && !(writes.is_empty() && !snapshot) {
                // Publish the writer entries *before* any fold: a
                // concurrent snapshot read between the fold and a later
                // publication would miss the rw-antidependency entirely.
                // Entries stay pending until claim time stamps them.
                for loc in &writes {
                    let entries = ssi.writers.entry(*loc).or_default();
                    if !entries.iter().any(|(w, _)| *w == txn) {
                        entries.push((txn, None));
                    }
                }
                let mut flagged: Vec<TxnId> = Vec::new();
                for loc in &writes {
                    if let Some(readers) = ssi.sireads.get(loc) {
                        for &r in readers {
                            if r != txn && !flagged.contains(&r) {
                                flagged.push(r);
                            }
                        }
                    }
                }
                let mut in_edge = false;
                for r in flagged {
                    let Some(rrec) = ssi.txns.get_mut(&r) else { continue };
                    // Skip only readers that committed before this writer
                    // began — a reader that committed *while* the writer
                    // was live is still concurrent (write skew hides
                    // exactly there). Writers begun while SSI was dormant
                    // have begin 0 and never skip (conservative).
                    if let Some(c) = rrec.committed {
                        if c <= begin {
                            continue;
                        }
                    }
                    rrec.out_conflict = true;
                    in_edge = true;
                    if rrec.in_conflict {
                        // Dangerous structure pivoting at the reader.
                        if rrec.committed.is_none() && !rrec.pseudo {
                            rrec.doomed = true;
                        } else {
                            doom_self = true;
                        }
                    }
                }
                if in_edge {
                    let rec = ssi.txns.entry(txn).or_default();
                    rec.in_conflict = true;
                    if rec.out_conflict {
                        doom_self = true;
                    }
                    if rec.writes.is_empty() {
                        rec.writes = writes.clone();
                    }
                } else if !writes.is_empty() {
                    let rec = ssi.txns.entry(txn).or_default();
                    for loc in &writes {
                        if !rec.writes.contains(loc) {
                            rec.writes.push(*loc);
                        }
                    }
                }
            }
        }
        if doom_self {
            return Err(self.ssi_abort(txn));
        }
        Ok(())
    }

    /// Abort `txn` with [`AbortReason::SsiConflict`] in every shard it is
    /// enrolled in; returns the session-facing error. Mirrors
    /// [`Self::abort`] (the transaction is live and not pseudo-committed:
    /// dangerous structures are decided strictly before commit entry).
    fn ssi_abort(&self, txn: TxnId) -> CoreError {
        let reason = AbortReason::SsiConflict;
        let fate = TermFate::Aborted(reason);
        let enrolled: Vec<u32> = self
            .enroll
            .lock()
            .live
            .get(&txn)
            .map(|r| r.shards.clone())
            .unwrap_or_default();
        match enrolled.len() {
            0 => {
                if self.claim(txn, fate).is_some() {
                    self.count_termination(fate);
                }
            }
            1 => {
                let shard = enrolled[0];
                let (result, fx) = {
                    let mut kernel = self.lock_shard(shard);
                    let result = kernel.abort_with(txn, reason);
                    let fx = drain_fx(&mut kernel);
                    (result, fx)
                };
                if result.is_ok() && self.claim(txn, fate).is_some() {
                    self.count_termination(fate);
                }
                self.absorb(shard, None, fx);
            }
            _ => {
                let mut fxs: Vec<(u32, ShardFx)> = Vec::new();
                {
                    let _termination = self.termination.lock();
                    for &s in &enrolled {
                        let mut kernel = self.lock_shard(s);
                        kernel.abort_coordinated(txn, reason);
                        let fx = drain_fx(&mut kernel);
                        drop(kernel);
                        fxs.push((s, fx));
                    }
                }
                if self.claim(txn, fate).is_some() {
                    self.count_termination(fate);
                }
                for (shard, fx) in fxs {
                    self.absorb(shard, None, fx);
                }
            }
        }
        CoreError::Aborted { txn, reason }
    }

    /// Claim-time SSI finalize (runs under the enrollment lock): stamp a
    /// committer's pending writer entries, retract an aborter's whole
    /// footprint, re-derive the GC floor, and clear everything once the
    /// database quiesces.
    fn ssi_finalize(&self, txn: TxnId, fate: TermFate, quiesced: bool) {
        let mut ssi = self.ssi.lock();
        match fate {
            TermFate::Committed => {
                // `clock.load()` over-estimates the transaction's actual
                // fold stamp, which can only make readers flag it as
                // concurrent when it was not — conservative, never unsafe.
                let now = self.commit_clock.load(Ordering::SeqCst);
                let writes = match ssi.txns.get_mut(&txn) {
                    Some(rec)
                        if !rec.snapshot
                            && rec.writes.is_empty()
                            && rec.reads.is_empty()
                            && !rec.in_conflict
                            && !rec.out_conflict =>
                    {
                        // A classified transaction that committed without
                        // touching any SSI state (its record exists only
                        // for the begin stamp) carries no conflict
                        // information — drop it instead of letting one
                        // record per transaction pile up until quiescence.
                        ssi.txns.remove(&txn);
                        Vec::new()
                    }
                    Some(rec) => {
                        rec.committed = Some(now);
                        rec.writes.clone()
                    }
                    None => Vec::new(),
                };
                for loc in writes {
                    if let Some(entries) = ssi.writers.get_mut(&loc) {
                        for entry in entries.iter_mut() {
                            if entry.0 == txn && entry.1.is_none() {
                                entry.1 = Some(now);
                            }
                        }
                    }
                }
            }
            TermFate::Aborted(_) => {
                if let Some(rec) = ssi.txns.remove(&txn) {
                    for loc in rec.writes {
                        if let Some(entries) = ssi.writers.get_mut(&loc) {
                            entries.retain(|(w, _)| *w != txn);
                        }
                    }
                    for loc in rec.reads {
                        if let Some(readers) = ssi.sireads.get_mut(&loc) {
                            readers.retain(|r| *r != txn);
                        }
                    }
                }
            }
        }
        let floor = ssi
            .txns
            .values()
            .filter(|t| t.snapshot && t.committed.is_none())
            .map(|t| t.begin)
            .min();
        if quiesced && floor.is_none() {
            // Full quiescence: no live transactions at all. Drop every
            // record and close the gate — the next `begin_snapshot`
            // reopens it.
            ssi.txns.clear();
            ssi.sireads.clear();
            ssi.writers.clear();
            self.version_floor.store(u64::MAX, Ordering::SeqCst);
            self.ssi_enabled.store(0, Ordering::SeqCst);
        } else {
            // Raising the floor outside the termination lock is safe:
            // the new value is at or below every live snapshot's begin
            // stamp, so any fold that reads it preserves what they need.
            self.version_floor
                .store(floor.unwrap_or(u64::MAX), Ordering::SeqCst);
        }
    }

    // ------------------------------------------------------------------
    // Coordination internals
    // ------------------------------------------------------------------

    /// Claim a termination: atomically move the transaction from the live
    /// to the finished map. Exactly one caller wins; it is responsible for
    /// the lifecycle counters and for completing the termination in the
    /// transaction's other shards.
    fn claim(&self, txn: TxnId, fate: TermFate) -> Option<Vec<u32>> {
        let mut enroll = self.enroll.lock();
        let rec = enroll.live.remove(&txn)?;
        let state = match fate {
            TermFate::Committed => TxnState::Committed,
            TermFate::Aborted(_) => TxnState::Aborted,
        };
        enroll.finished.insert(txn, state);
        if self.ssi_enabled.load(Ordering::SeqCst) != 0 {
            // Finalize under the enrollment lock (enroll → ssi is the
            // one permitted nesting): stamp or retract the transaction's
            // SSI footprint and clear everything at quiescence.
            self.ssi_finalize(txn, fate, enroll.live.is_empty());
        }
        Some(rec.shards)
    }

    fn count_termination(&self, fate: TermFate) {
        let counter = match fate {
            TermFate::Committed => &self.lifecycle.commits,
            TermFate::Aborted(AbortReason::DeadlockCycle) => &self.lifecycle.aborts_deadlock,
            TermFate::Aborted(AbortReason::CommitDependencyCycle) => {
                &self.lifecycle.aborts_commit_cycle
            }
            TermFate::Aborted(AbortReason::VictimSelected) => &self.lifecycle.aborts_victim,
            TermFate::Aborted(AbortReason::SsiConflict) => &self.lifecycle.aborts_ssi,
            TermFate::Aborted(AbortReason::UndeclaredAccess) => {
                &self.lifecycle.aborts_undeclared
            }
            TermFate::Aborted(AbortReason::Explicit) => &self.lifecycle.aborts_explicit,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Process the side effects of a shard pass to fixpoint: forward the
    /// events, complete cross-shard terminations (a kernel only ever
    /// terminates a transaction locally), and re-run commit votes for
    /// coordinated transactions whose local dependencies cleared.
    fn absorb(&self, origin: u32, requester: Option<(TxnId, AbortReason)>, fx: ShardFx) {
        // Fast path: nothing happened (no events, no coordination, no
        // requester abort) — the common case for every commuting request.
        if requester.is_none() && fx.events.is_empty() && fx.ready.is_empty() {
            return;
        }
        let mut pending: Vec<(u32, ShardFx)> = vec![(origin, fx)];
        let mut terminations: Vec<(TxnId, TermFate, u32)> = Vec::new();
        let mut ready: Vec<TxnId> = Vec::new();
        if let Some((txn, reason)) = requester {
            terminations.push((txn, TermFate::Aborted(reason), origin));
        }
        loop {
            while let Some((shard, fx)) = pending.pop() {
                for event in &fx.events {
                    match event {
                        KernelEvent::Aborted { txn, reason } => {
                            terminations.push((*txn, TermFate::Aborted(*reason), shard));
                        }
                        KernelEvent::Committed { txn } => {
                            terminations.push((*txn, TermFate::Committed, shard));
                        }
                        KernelEvent::Unblocked {
                            txn,
                            outcome: RequestOutcome::Aborted { reason },
                        } => {
                            terminations.push((*txn, TermFate::Aborted(*reason), shard));
                        }
                        KernelEvent::Unblocked { .. } => {}
                    }
                }
                ready.extend(fx.ready);
                self.publish_events(fx.events);
            }
            if let Some((txn, fate, origin_shard)) = terminations.pop() {
                let Some(shards) = self.claim(txn, fate) else {
                    continue; // already completed by another path
                };
                self.count_termination(fate);
                if let TermFate::Aborted(reason) = fate {
                    // Aborts of multi-shard transactions originate in one
                    // shard (the requester's own thread, or a retry in the
                    // shard holding its pending request); complete them in
                    // the other shards.
                    for s in shards {
                        if s == origin_shard {
                            continue;
                        }
                        let mut kernel = self.lock_shard(s);
                        if kernel.abort_coordinated(txn, reason) {
                            let fx = drain_fx(&mut kernel);
                            drop(kernel);
                            pending.push((s, fx));
                        }
                    }
                }
                continue;
            }
            if let Some(txn) = ready.pop() {
                pending.extend(self.vote(txn));
                continue;
            }
            break;
        }
    }

    /// Make a decided multi-shard commit durable **before** any shard
    /// applies it in-memory: append each enrolled shard's fragment (tagged
    /// with a shared group id), flush every fragment, then append + flush
    /// the cross-shard marker. Recovery replays a fragment only when its
    /// marker is durable, so a crash anywhere inside this sequence loses
    /// the transaction *atomically* — the marker is written strictly after
    /// every fragment, making "marker without a fragment" unrepresentable
    /// on disk.
    ///
    /// Runs under the termination lock (both callers hold it), so the
    /// fragments' append order against other multi-shard commits matches
    /// their in-memory commit order. Marks the transaction `wal_logged` in
    /// every shard so the per-shard `actually_commit` does not log it
    /// again.
    fn wal_log_multi(&self, txn: TxnId, shards: &[u32]) {
        let Some(wal) = self.wal.get() else { return };
        let mut payloads: Vec<(u32, Vec<sbcc_wal::LoggedOp>)> = Vec::new();
        for &s in shards {
            let mut kernel = self.peek_shard(s);
            let ops = kernel.wal_payload(txn);
            kernel.mark_wal_logged(txn);
            drop(kernel);
            if !ops.is_empty() {
                payloads.push((s, ops));
            }
        }
        if payloads.is_empty() {
            return; // nothing executed anywhere: nothing to make durable
        }
        let gid = wal.next_gid();
        for (s, ops) in &payloads {
            wal.append_commit(*s, Some(gid), ops);
        }
        for (s, _) in &payloads {
            // A crash between two of these flushes leaves a fragment
            // durable without its marker; recovery must drop it.
            chaos::reach(ChaosPoint::WalFlush, Some(txn));
            wal.flush_shard(*s);
        }
        wal.commit_marker(gid);
    }

    /// Re-run the commit vote for a coordinated pseudo-committed
    /// transaction; on a unanimous (empty) dependency union, apply its
    /// actual commit shard by shard. Returns the side effects of the
    /// applications.
    fn vote(&self, txn: TxnId) -> Vec<(u32, ShardFx)> {
        // A `drain_coordination_ready` re-vote is starting: the window
        // between the original pseudo-commit vote and this re-vote is
        // where dependency settles and victim aborts interleave.
        chaos::reach(ChaosPoint::ReVote, Some(txn));
        let _termination = self.termination.lock();
        let shards: Vec<u32> = {
            let enroll = self.enroll.lock();
            match enroll.live.get(&txn) {
                Some(rec) if rec.pseudo => rec.shards.clone(),
                _ => return Vec::new(), // already terminated or not pseudo yet
            }
        };
        for &s in &shards {
            if !self.peek_shard(s).commit_dependencies_of(txn).is_empty() {
                return Vec::new(); // still waiting; a later settle re-votes
            }
        }
        // Same durability-before-visibility step as the direct unanimous
        // vote in `commit_multi` (the session's pseudo-commit ack made no
        // durability promise, so nobody waits on this).
        self.wal_log_multi(txn, &shards);
        // Like the direct unanimous vote: one stamp for every shard's
        // fold, drawn under the termination lock.
        let stamp = self.commit_clock.fetch_add(1, Ordering::SeqCst) + 1;
        let mut fxs = Vec::new();
        for &s in &shards {
            let mut kernel = self.lock_shard(s);
            kernel.commit_coordinated(txn, stamp);
            let fx = drain_fx(&mut kernel);
            drop(kernel);
            fxs.push((s, fx));
        }
        if self.claim(txn, TermFate::Committed).is_some() {
            self.count_termination(TermFate::Committed);
            self.publish_events(vec![KernelEvent::Committed { txn }]);
        }
        fxs
    }

    // ------------------------------------------------------------------
    // Observability and validation
    // ------------------------------------------------------------------

    /// Overwrite the summed transaction-lifecycle counters with the
    /// coordinator's globally deduplicated counts.
    fn apply_lifecycle(&self, aggregate: &mut KernelStats) {
        aggregate.transactions_begun = self.lifecycle.begun.load(Ordering::Relaxed);
        aggregate.commits = self.lifecycle.commits.load(Ordering::Relaxed);
        aggregate.pseudo_commits = self.lifecycle.pseudo_commits.load(Ordering::Relaxed);
        aggregate.aborts_deadlock = self.lifecycle.aborts_deadlock.load(Ordering::Relaxed);
        aggregate.aborts_commit_cycle =
            self.lifecycle.aborts_commit_cycle.load(Ordering::Relaxed);
        aggregate.aborts_victim = self.lifecycle.aborts_victim.load(Ordering::Relaxed);
        aggregate.aborts_ssi = self.lifecycle.aborts_ssi.load(Ordering::Relaxed);
        aggregate.aborts_undeclared = self.lifecycle.aborts_undeclared.load(Ordering::Relaxed);
        aggregate.aborts_explicit = self.lifecycle.aborts_explicit.load(Ordering::Relaxed);
    }

    /// Globally deduplicated counters: operation-level counters summed
    /// across shards, transaction-lifecycle counters from the coordinator.
    pub fn stats(&self) -> KernelStats {
        let mut aggregate = KernelStats::default();
        for cell in &self.shards {
            aggregate.accumulate(cell.kernel.lock().stats());
        }
        self.apply_lifecycle(&mut aggregate);
        aggregate
    }

    /// The aggregate plus the per-shard breakdown. The aggregate's
    /// operation-level counters are computed from the very per-shard
    /// readings reported alongside (one lock pass), so the breakdown
    /// always sums to the aggregate even while workers are running.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let mut reorder = sbcc_graph::OrderTelemetry::default();
        let shards: Vec<ShardStats> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                let kernel = cell.kernel.lock();
                reorder.accumulate(&kernel.reorder_telemetry());
                ShardStats {
                    shard: i,
                    lock_acquisitions: cell.lock_acquisitions.load(Ordering::Relaxed),
                    stats: kernel.stats().clone(),
                }
            })
            .collect();
        reorder.accumulate(&self.global.reorder_telemetry());
        let mut aggregate = KernelStats::default();
        for shard in &shards {
            aggregate.accumulate(&shard.stats);
        }
        self.apply_lifecycle(&mut aggregate);
        StatsSnapshot {
            aggregate,
            // The *resolved* topology: even under `ShardCount::Auto` this
            // records the concrete shard count the database is running
            // with, so simulation runs and bug reports capture it.
            shard_count: self.shards.len(),
            shards,
            global_cycle_checks: self.global.cycle_checks(),
            reorder,
        }
    }

    /// Cycle checks across all local graphs plus the escalation graph.
    pub fn cycle_checks(&self) -> u64 {
        let local: u64 = self
            .shards
            .iter()
            .map(|cell| cell.kernel.lock().cycle_checks())
            .sum();
        local + self.global.cycle_checks()
    }

    /// Check every shard's internal invariants plus the escalation graph's
    /// acyclicity.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, cell) in self.shards.iter().enumerate() {
            cell.kernel
                .lock()
                .check_invariants()
                .map_err(|e| format!("shard {i}: {e}"))?;
        }
        if self.global.has_cycle() {
            return Err("cross-shard escalation graph contains a cycle".to_owned());
        }
        Ok(())
    }

    /// Run the commit-order serializability checker on every shard
    /// (requires history recording).
    pub fn verify_serializable(&self) -> Result<(), String> {
        for (i, cell) in self.shards.iter().enumerate() {
            let kernel = cell.kernel.lock();
            crate::history::verify_commit_order_serializable(&kernel)
                .map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }

    /// Run the commit-order dependency checker on every shard.
    pub fn verify_commit_dependencies(&self) -> Result<(), String> {
        for (i, cell) in self.shards.iter().enumerate() {
            let kernel = cell.kernel.lock();
            crate::history::verify_commit_order_respects_dependencies(&kernel)
                .map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbcc_adt::{AdtOp, Counter, CounterOp, Stack, StackOp, Value};

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 7, 8] {
            for name in ["a", "jobs", "obj123", ""] {
                let s = shard_of_name(name, shards);
                assert_eq!(s, shard_of_name(name, shards), "deterministic");
                assert!((s as usize) < shards);
            }
        }
        // With one shard everything routes to shard 0.
        assert_eq!(shard_of_name("anything", 1), 0);
    }

    #[test]
    fn config_builder_and_env_default() {
        let config = DatabaseConfig::new(SchedulerConfig::default());
        assert!(config.shards.resolve() >= 1);
        let config = config.with_shards(4);
        assert_eq!(config.shards, ShardCount::Fixed(4));
        assert_eq!(DatabaseConfig::default().scheduler, SchedulerConfig::default());
    }

    #[test]
    fn shard_count_parses_and_resolves() {
        assert_eq!("4".parse::<ShardCount>(), Ok(ShardCount::Fixed(4)));
        assert_eq!(" auto ".parse::<ShardCount>(), Ok(ShardCount::Auto));
        assert_eq!("AUTO".parse::<ShardCount>(), Ok(ShardCount::Auto));
        assert!("0".parse::<ShardCount>().is_err());
        assert!("".parse::<ShardCount>().is_err());
        assert!("-3".parse::<ShardCount>().is_err());
        assert_eq!(ShardCount::Fixed(7).resolve(), 7);
        assert_eq!(ShardCount::from(3), ShardCount::Fixed(3));
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(ShardCount::Auto.resolve(), cores);
        assert_eq!(ShardCount::Auto.to_string(), "auto");
        assert_eq!(ShardCount::Fixed(2).to_string(), "2");
    }

    #[test]
    fn auto_shards_build_one_kernel_per_core() {
        let kernel = ShardedKernel::new(
            DatabaseConfig::new(SchedulerConfig::default()).with_shards(ShardCount::Auto),
        );
        assert_eq!(kernel.shard_count(), ShardCount::Auto.resolve());
        // The resolved topology is recorded in the snapshot, so harness
        // reports and bug reports capture what `auto` actually meant.
        assert_eq!(kernel.stats_snapshot().shard_count, ShardCount::Auto.resolve());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = DatabaseConfig::new(SchedulerConfig::default()).with_shards(0);
    }

    #[test]
    fn registration_routes_by_name_hash_and_ids_stay_dense() {
        let kernel = ShardedKernel::new(
            DatabaseConfig::new(SchedulerConfig::default()).with_shards(4),
        );
        for i in 0..16 {
            let name = format!("obj{i}");
            let (id, loc) = kernel.register(name.clone(), Counter::new()).unwrap();
            assert_eq!(id, ObjectId(i as u32), "global ids are dense");
            assert_eq!(loc.shard, shard_of_name(&name, 4));
            assert_eq!(kernel.object_id(&name), Some(id));
            assert_eq!(kernel.object_loc(id), Some(loc));
        }
        assert_eq!(kernel.object_count(), 16);
        assert!(kernel.register("obj0", Counter::new()).is_err(), "duplicate name");
        assert!(kernel.object_loc(ObjectId(99)).is_none());
    }

    #[test]
    fn escalation_graph_honours_the_configured_reorder_strategy() {
        use sbcc_graph::ReorderStrategy;
        // T2 is created above T1, so the edge 1 -> 2 violates the order;
        // which repair runs must follow the configured strategy, not the
        // graph-crate default.
        let dense = GlobalGraph::with_reorder(ReorderStrategy::DenseRedistribute);
        dense.add_edge(TxnId(1), TxnId(2), EdgeKind::WaitFor);
        let t = dense.reorder_telemetry();
        assert_eq!(t.violations, 1);
        assert_eq!(t.slow_path_allocs, 1, "the dense repair allocates");

        let gap = GlobalGraph::with_reorder(ReorderStrategy::GapLabel);
        gap.add_edge(TxnId(1), TxnId(2), EdgeKind::WaitFor);
        let t = gap.reorder_telemetry();
        assert_eq!(t.violations, 1);
        assert_eq!(t.slow_path_allocs, 0, "the gap repair does not");

        // And ShardedKernel::new threads the scheduler knob through.
        let kernel = ShardedKernel::new(
            DatabaseConfig::new(
                SchedulerConfig::default().with_reorder(ReorderStrategy::DenseRedistribute),
            )
            .with_shards(2),
        );
        kernel
            .global
            .add_edge(TxnId(1), TxnId(2), EdgeKind::WaitFor);
        assert_eq!(kernel.global.reorder_telemetry().slow_path_allocs, 1);
    }

    #[test]
    fn opless_transaction_commits_and_counts_once() {
        let kernel = ShardedKernel::new(DatabaseConfig::default());
        let t = kernel.begin();
        assert_eq!(kernel.txn_state(t), Some(TxnState::Active));
        assert_eq!(kernel.commit(t).unwrap(), CommitOutcome::Committed);
        assert_eq!(kernel.txn_state(t), Some(TxnState::Committed));
        let stats = kernel.stats();
        assert_eq!(stats.transactions_begun, 1);
        assert_eq!(stats.commits, 1);
        // Terminated transactions reject further actions with the same
        // errors the unsharded kernel produces.
        assert!(matches!(
            kernel.commit(t),
            Err(CoreError::InvalidState { state: TxnState::Committed, .. })
        ));
        assert!(matches!(
            kernel.abort(t),
            Err(CoreError::InvalidState { .. })
        ));
        assert!(matches!(
            kernel.commit(TxnId(42)),
            Err(CoreError::UnknownTransaction(_))
        ));
    }

    #[test]
    fn single_shard_requests_never_touch_the_escalation_graph() {
        let kernel = ShardedKernel::new(
            DatabaseConfig::new(SchedulerConfig::default()).with_shards(4),
        );
        let (a, _) = kernel.register("a", Stack::new()).unwrap();
        let t1 = kernel.begin();
        let t2 = kernel.begin();
        assert!(kernel
            .request(t1, a, StackOp::Push(Value::Int(1)).to_call())
            .unwrap()
            .is_executed());
        // Recoverable push: a commit-dep edge, entirely intra-shard.
        assert!(kernel
            .request(t2, a, StackOp::Push(Value::Int(2)).to_call())
            .unwrap()
            .is_executed());
        let snapshot = kernel.stats_snapshot();
        assert_eq!(snapshot.aggregate.escalated_edges, 0);
        assert_eq!(snapshot.aggregate.escalated_checks, 0);
        assert_eq!(snapshot.global_cycle_checks, 0);
        assert!(snapshot.aggregate.graph_edges >= 1);
        assert_eq!(snapshot.shards.len(), 4);
        let _ = kernel.commit(t1).unwrap();
        let _ = kernel.commit(t2).unwrap();
        kernel.check_invariants().unwrap();
        assert!(format!("{kernel:?}").contains("ShardedKernel"));
    }

    #[test]
    fn stats_snapshot_reports_per_shard_lock_traffic() {
        let kernel = ShardedKernel::new(
            DatabaseConfig::new(SchedulerConfig::default()).with_shards(2),
        );
        // Find names on both shards.
        let mut names: Vec<Option<String>> = vec![None, None];
        let mut i = 0;
        while names.iter().any(Option::is_none) {
            let candidate = format!("n{i}");
            let shard = shard_of_name(&candidate, 2) as usize;
            if names[shard].is_none() {
                names[shard] = Some(candidate);
            }
            i += 1;
        }
        let (a, loc_a) = kernel
            .register(names[0].clone().unwrap(), Counter::new())
            .unwrap();
        let (b, loc_b) = kernel
            .register(names[1].clone().unwrap(), Counter::new())
            .unwrap();
        assert_ne!(loc_a.shard, loc_b.shard);
        let t = kernel.begin();
        assert!(kernel.request(t, a, CounterOp::Increment(1).to_call()).unwrap().is_executed());
        assert!(kernel.request(t, b, CounterOp::Increment(1).to_call()).unwrap().is_executed());
        let _ = kernel.commit(t).unwrap();
        let snapshot = kernel.stats_snapshot();
        assert!(snapshot.shards[0].lock_acquisitions >= 1);
        assert!(snapshot.shards[1].lock_acquisitions >= 1);
        assert_eq!(snapshot.aggregate.operations_executed, 2);
        assert_eq!(snapshot.aggregate.commits, 1);
        // Per-shard lifecycle counters count local applications: the
        // multi-shard commit shows up in both kernels.
        let per_shard_commits: u64 =
            snapshot.shards.iter().map(|s| s.stats.commits).sum();
        assert_eq!(per_shard_commits, 2);
        assert!(!snapshot.shard_summary().is_empty());
    }

    /// The coordinator votes (collecting per-shard dependencies) and marks
    /// the pseudo-commit in two separate critical sections per shard; the
    /// last dependency can terminate in between. A pseudo-commit whose
    /// local out-degree is *already* zero must be reported as
    /// coordination-ready immediately — no later edge removal will ever
    /// re-report it. (Found as a cross-session hang by DST seed 133.)
    #[test]
    fn pseudo_commit_with_no_remaining_deps_is_immediately_coordination_ready() {
        let mut kernel = SchedulerKernel::new(SchedulerConfig::default());
        let txn = TxnId(1);
        kernel.adopt(txn, true);
        assert!(kernel.pseudo_commit_coordinated(txn));
        assert_eq!(
            kernel.drain_coordination_ready(),
            vec![txn],
            "dependency-free pseudo-commit must queue its re-vote at once"
        );
        assert_eq!(kernel.txn_state(txn), Some(TxnState::PseudoCommitted));
    }
}
