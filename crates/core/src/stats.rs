//! Kernel-level counters.
//!
//! These are the raw counts the simulation study turns into its performance
//! metrics (blocking ratio, restart ratio, cycle-check ratio, …); they are
//! also handy for applications that want visibility into how much extra
//! concurrency recoverability is buying them.

/// Monotonically increasing counters maintained by the kernel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Transactions begun.
    pub transactions_begun: u64,
    /// Operation requests received (excluding internal retries of blocked
    /// requests). Each call of a batch counts as one request, so this
    /// counter is directly comparable between per-call and batched
    /// submission.
    pub requests: u64,
    /// Grouped submission passes ([`crate::SchedulerKernel::request_batch`]).
    /// A batch whose blocked terminator later settles is resumed by the
    /// session layer as a fresh pass over the remaining calls, which counts
    /// again here.
    pub batches: u64,
    /// Calls *processed* by batch passes: each counts one request, so this
    /// is always a subset of `requests` (a blocked batch's unprocessed
    /// suffix is not counted until its resumption pass processes it).
    pub batched_calls: u64,
    /// Operations actually executed (including executions that happen when a
    /// blocked request is finally admitted).
    pub operations_executed: u64,
    /// Times a transaction transitioned to the blocked state because a new
    /// request conflicted (retries that remain blocked are not re-counted).
    pub blocks: u64,
    /// Times a blocked transaction's pending request was admitted.
    pub unblocks: u64,
    /// Commit-dependency edges created (one per (requester, holder) pair per
    /// admitted recoverable request).
    pub commit_dependencies: u64,
    /// Actual commits.
    pub commits: u64,
    /// Pseudo-commits (every pseudo-committed transaction later also counts
    /// one actual commit).
    pub pseudo_commits: u64,
    /// Aborts because blocking would have closed a (deadlock) cycle.
    pub aborts_deadlock: u64,
    /// Aborts because a recoverable execution would have closed a
    /// commit-dependency cycle.
    pub aborts_commit_cycle: u64,
    /// Aborts of transactions chosen as victims on behalf of another
    /// requester (only under `VictimPolicy::Youngest`).
    pub aborts_victim: u64,
    /// Explicit, application-requested aborts.
    pub aborts_explicit: u64,
}

impl KernelStats {
    /// Total aborts of every kind.
    pub fn total_aborts(&self) -> u64 {
        self.aborts_deadlock + self.aborts_commit_cycle + self.aborts_victim + self.aborts_explicit
    }

    /// Aborts caused by the scheduler (everything except explicit aborts).
    pub fn scheduler_aborts(&self) -> u64 {
        self.aborts_deadlock + self.aborts_commit_cycle + self.aborts_victim
    }

    /// Blocks per commit (the paper's *blocking ratio*); zero when nothing
    /// has committed yet.
    pub fn blocking_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.blocks as f64 / self.commits as f64
        }
    }

    /// Scheduler aborts per commit.
    pub fn abort_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.scheduler_aborts() as f64 / self.commits as f64
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "txns={} requests={} batches={}/{} executed={} blocks={} unblocks={} commit-deps={} commits={} pseudo={} aborts(deadlock={}, cycle={}, victim={}, explicit={})",
            self.transactions_begun,
            self.requests,
            self.batches,
            self.batched_calls,
            self.operations_executed,
            self.blocks,
            self.unblocks,
            self.commit_dependencies,
            self.commits,
            self.pseudo_commits,
            self.aborts_deadlock,
            self.aborts_commit_cycle,
            self.aborts_victim,
            self.aborts_explicit,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratios() {
        let mut s = KernelStats::default();
        assert_eq!(s.total_aborts(), 0);
        assert_eq!(s.blocking_ratio(), 0.0);
        assert_eq!(s.abort_ratio(), 0.0);

        s.blocks = 10;
        s.commits = 4;
        s.aborts_deadlock = 1;
        s.aborts_commit_cycle = 2;
        s.aborts_victim = 1;
        s.aborts_explicit = 5;
        assert_eq!(s.total_aborts(), 9);
        assert_eq!(s.scheduler_aborts(), 4);
        assert!((s.blocking_ratio() - 2.5).abs() < 1e-9);
        assert!((s.abort_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn summary_mentions_key_counters() {
        let s = KernelStats {
            commits: 3,
            pseudo_commits: 2,
            ..KernelStats::default()
        };
        let text = s.summary();
        assert!(text.contains("commits=3"));
        assert!(text.contains("pseudo=2"));
    }
}
