//! Kernel-level counters.
//!
//! These are the raw counts the simulation study turns into its performance
//! metrics (blocking ratio, restart ratio, cycle-check ratio, …); they are
//! also handy for applications that want visibility into how much extra
//! concurrency recoverability is buying them.

/// Monotonically increasing counters maintained by the kernel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Transactions begun.
    pub transactions_begun: u64,
    /// Operation requests received (excluding internal retries of blocked
    /// requests). Each call of a batch counts as one request, so this
    /// counter is directly comparable between per-call and batched
    /// submission.
    pub requests: u64,
    /// Grouped submission passes ([`crate::SchedulerKernel::request_batch`]).
    /// A batch whose blocked terminator later settles is resumed by the
    /// session layer as a fresh pass over the remaining calls, which counts
    /// again here.
    pub batches: u64,
    /// Calls *processed* by batch passes: each counts one request, so this
    /// is always a subset of `requests` (a blocked batch's unprocessed
    /// suffix is not counted until its resumption pass processes it).
    pub batched_calls: u64,
    /// Batch passes that arrived with a declared access set (whether or not
    /// the fast path ended up applying).
    pub declared_batches: u64,
    /// Declared batch passes admitted wholesale by the group-admission fast
    /// path: the declared footprint was disjoint from every live
    /// transaction, so every call executed with **zero per-op
    /// classification**.
    pub declared_admitted: u64,
    /// Declared batch passes that fell back to the per-op semantic
    /// classifier because the declared footprint overlapped live
    /// transactions (a correct declaration, just not a disjoint one).
    pub declared_fallbacks: u64,
    /// Declared batch passes whose calls escaped the declared footprint
    /// and were escalated to the per-op classifier under
    /// [`crate::UndeclaredPolicy::Escalate`] (mis-declarations detected and
    /// demoted, never trusted).
    pub declared_escalations: u64,
    /// Operations actually executed (including executions that happen when a
    /// blocked request is finally admitted).
    pub operations_executed: u64,
    /// Times a transaction transitioned to the blocked state because a new
    /// request conflicted (retries that remain blocked are not re-counted).
    pub blocks: u64,
    /// Times a blocked transaction's pending request was admitted.
    pub unblocks: u64,
    /// Commit-dependency edges created (one per (requester, holder) pair per
    /// admitted recoverable request).
    pub commit_dependencies: u64,
    /// Actual commits.
    pub commits: u64,
    /// Pseudo-commits (every pseudo-committed transaction later also counts
    /// one actual commit).
    pub pseudo_commits: u64,
    /// Aborts because blocking would have closed a (deadlock) cycle.
    pub aborts_deadlock: u64,
    /// Aborts because a recoverable execution would have closed a
    /// commit-dependency cycle.
    pub aborts_commit_cycle: u64,
    /// Aborts of transactions chosen as victims on behalf of another
    /// requester (only under `VictimPolicy::Youngest`).
    pub aborts_victim: u64,
    /// Aborts of snapshot transactions that completed a dangerous SSI
    /// structure (both in- and out-rw-antidependencies; see
    /// [`crate::AbortReason::SsiConflict`]).
    pub aborts_ssi: u64,
    /// Aborts of declared batches that touched an object outside their
    /// declared access set, under [`crate::UndeclaredPolicy::Abort`] (see
    /// [`crate::AbortReason::UndeclaredAccess`]).
    pub aborts_undeclared: u64,
    /// Explicit, application-requested aborts.
    pub aborts_explicit: u64,
    /// Operations answered by the multi-version snapshot-read path (no
    /// classification, no blocking, no dependency-graph edges).
    pub snapshot_reads: u64,
    /// Historical object versions discarded because they became older than
    /// the oldest live snapshot (multi-version GC).
    pub versions_pruned: u64,
    /// Dependency-graph edges added to this kernel's **local** graph
    /// (wait-for and commit-dependency combined, post-deduplication).
    pub graph_edges: u64,
    /// Edges that were additionally mirrored into the cross-shard
    /// escalation graph because the kernel was entangled at insertion time
    /// (always zero for an unsharded kernel; see [`crate::shard`]).
    pub escalated_edges: u64,
    /// Cycle checks that had to consult the cross-shard escalation graph
    /// after the local graph found no cycle (always zero for an unsharded
    /// kernel).
    pub escalated_checks: u64,
}

impl KernelStats {
    /// Add every counter of `other` into `self` (used to aggregate
    /// per-shard kernels into one database-wide view; the sharding layer
    /// afterwards overwrites the transaction-lifecycle counters with its
    /// own globally deduplicated counts).
    pub fn accumulate(&mut self, other: &KernelStats) {
        self.transactions_begun += other.transactions_begun;
        self.requests += other.requests;
        self.batches += other.batches;
        self.batched_calls += other.batched_calls;
        self.declared_batches += other.declared_batches;
        self.declared_admitted += other.declared_admitted;
        self.declared_fallbacks += other.declared_fallbacks;
        self.declared_escalations += other.declared_escalations;
        self.operations_executed += other.operations_executed;
        self.blocks += other.blocks;
        self.unblocks += other.unblocks;
        self.commit_dependencies += other.commit_dependencies;
        self.commits += other.commits;
        self.pseudo_commits += other.pseudo_commits;
        self.aborts_deadlock += other.aborts_deadlock;
        self.aborts_commit_cycle += other.aborts_commit_cycle;
        self.aborts_victim += other.aborts_victim;
        self.aborts_ssi += other.aborts_ssi;
        self.aborts_undeclared += other.aborts_undeclared;
        self.aborts_explicit += other.aborts_explicit;
        self.snapshot_reads += other.snapshot_reads;
        self.versions_pruned += other.versions_pruned;
        self.graph_edges += other.graph_edges;
        self.escalated_edges += other.escalated_edges;
        self.escalated_checks += other.escalated_checks;
    }

    /// Total aborts of every kind.
    pub fn total_aborts(&self) -> u64 {
        self.aborts_deadlock
            + self.aborts_commit_cycle
            + self.aborts_victim
            + self.aborts_ssi
            + self.aborts_undeclared
            + self.aborts_explicit
    }

    /// Aborts caused by the scheduler (everything except explicit aborts).
    pub fn scheduler_aborts(&self) -> u64 {
        self.aborts_deadlock
            + self.aborts_commit_cycle
            + self.aborts_victim
            + self.aborts_ssi
            + self.aborts_undeclared
    }

    /// Blocks per commit (the paper's *blocking ratio*); zero when nothing
    /// has committed yet.
    pub fn blocking_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.blocks as f64 / self.commits as f64
        }
    }

    /// Scheduler aborts per commit.
    pub fn abort_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.scheduler_aborts() as f64 / self.commits as f64
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "txns={} requests={} batches={}/{} declared(batches={}, admitted={}, fallbacks={}, escalations={}) executed={} snapshot-reads={} blocks={} unblocks={} commit-deps={} commits={} pseudo={} aborts(deadlock={}, cycle={}, victim={}, ssi={}, undeclared={}, explicit={}) versions-pruned={}",
            self.transactions_begun,
            self.requests,
            self.batches,
            self.batched_calls,
            self.declared_batches,
            self.declared_admitted,
            self.declared_fallbacks,
            self.declared_escalations,
            self.operations_executed,
            self.snapshot_reads,
            self.blocks,
            self.unblocks,
            self.commit_dependencies,
            self.commits,
            self.pseudo_commits,
            self.aborts_deadlock,
            self.aborts_commit_cycle,
            self.aborts_victim,
            self.aborts_ssi,
            self.aborts_undeclared,
            self.aborts_explicit,
            self.versions_pruned,
        )
    }
}

/// One shard's contribution to a [`StatsSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Times this shard's kernel lock was acquired by the request,
    /// batching, termination or coordination paths.
    pub lock_acquisitions: u64,
    /// The shard kernel's raw counters. Transaction-lifecycle counters
    /// (`transactions_begun`, `commits`, aborts, …) count **local
    /// applications**: a transaction enrolled in several shards contributes
    /// to each of them, so their per-shard sum can exceed the aggregate.
    pub stats: KernelStats,
}

/// Database-wide counters with a per-shard breakdown, produced by
/// [`crate::shard::ShardedKernel::stats_snapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Globally deduplicated counters: operation-level counters are summed
    /// across shards, transaction-lifecycle counters come from the
    /// cross-shard coordinator (each transaction counted exactly once, no
    /// matter how many shards it touched).
    pub aggregate: KernelStats,
    /// The **resolved** shard count of the topology that produced this
    /// snapshot. Equals `shards.len()`, but recorded explicitly so a
    /// database configured with [`crate::ShardCount::Auto`] reports the
    /// concrete count it resolved to — deterministic-simulation runs and
    /// bug reports need the actual topology, not the configuration.
    pub shard_count: usize,
    /// Per-shard breakdown, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Cycle checks performed on the cross-shard escalation graph (the
    /// union of all entangled shards' edges). Always zero with one shard.
    pub global_cycle_checks: u64,
    /// Topological-order maintenance telemetry summed over every shard's
    /// local dependency graph plus the escalation graph: violations seen,
    /// nodes relabeled, allocating slow paths and gap-exhaustion
    /// renumberings. On the default gap-label strategy, a workload whose
    /// violation regions stay small must show `slow_path_allocs == 0` —
    /// the allocation-free hot-path claim the benches assert.
    pub reorder: sbcc_graph::OrderTelemetry,
}

impl StatsSnapshot {
    /// Edges that stayed purely shard-local (never mirrored into the
    /// escalation graph) across all shards.
    pub fn local_only_edges(&self) -> u64 {
        self.aggregate.graph_edges - self.aggregate.escalated_edges
    }

    /// One-line human-readable summary of the sharding behaviour.
    pub fn shard_summary(&self) -> String {
        let locks: Vec<String> = self
            .shards
            .iter()
            .map(|s| s.lock_acquisitions.to_string())
            .collect();
        format!(
            "shards={} locks=[{}] edges(local-only={}, escalated={}) escalated-checks={} global-cycle-checks={} reorder(violations={}, relabeled={}, allocs={}, renumbers={}, windows={})",
            self.shard_count,
            locks.join(","),
            self.local_only_edges(),
            self.aggregate.escalated_edges,
            self.aggregate.escalated_checks,
            self.global_cycle_checks,
            self.reorder.violations,
            self.reorder.nodes_relabeled,
            self.reorder.slow_path_allocs,
            self.reorder.renumber_events,
            self.reorder.window_renumber_events,
        )
    }
}

/// Counters maintained by a network front-end (the `sbcc-net` server).
///
/// Defined here, next to the kernel counters, so every front-end — and the
/// benches and tests that assert on them — shares one vocabulary. The
/// kernel itself never touches these; the server snapshots them alongside
/// [`StatsSnapshot`] so a single read answers "is anything leaked?"
/// (`connections_open == 0 && transactions_in_flight == 0` after
/// shutdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: u64,
    /// Connections currently open (a gauge, not a monotone counter).
    pub connections_open: u64,
    /// Transactions currently in flight across all connections (a gauge).
    pub transactions_in_flight: u64,
    /// Requests refused with a `Busy` shed-load error frame because the
    /// per-connection in-flight transaction cap was reached.
    pub shed_busy: u64,
    /// Connections torn down by the per-connection read timeout while they
    /// held live transactions.
    pub read_timeouts: u64,
    /// Server-side sessions aborted because their connection disconnected
    /// or timed out mid-transaction (each one also unblocked any waiters).
    pub sessions_auto_aborted: u64,
}

impl NetStats {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "conns(accepted={}, open={}) in-flight={} shed-busy={} read-timeouts={} auto-aborted={}",
            self.connections_accepted,
            self.connections_open,
            self.transactions_in_flight,
            self.shed_busy,
            self.read_timeouts,
            self.sessions_auto_aborted,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_stats_summary_mentions_every_counter() {
        let s = NetStats {
            connections_accepted: 9,
            connections_open: 2,
            transactions_in_flight: 3,
            shed_busy: 4,
            read_timeouts: 5,
            sessions_auto_aborted: 6,
        };
        let text = s.summary();
        assert!(text.contains("accepted=9"));
        assert!(text.contains("open=2"));
        assert!(text.contains("in-flight=3"));
        assert!(text.contains("shed-busy=4"));
        assert!(text.contains("read-timeouts=5"));
        assert!(text.contains("auto-aborted=6"));
    }

    #[test]
    fn accumulate_sums_every_counter() {
        let mut a = KernelStats::default();
        let mut b = KernelStats::default();
        a.requests = 3;
        a.graph_edges = 2;
        b.requests = 4;
        b.commits = 1;
        b.escalated_edges = 5;
        b.declared_batches = 6;
        b.declared_admitted = 4;
        b.declared_fallbacks = 1;
        b.declared_escalations = 1;
        b.aborts_undeclared = 2;
        a.accumulate(&b);
        assert_eq!(a.requests, 7);
        assert_eq!(a.commits, 1);
        assert_eq!(a.graph_edges, 2);
        assert_eq!(a.escalated_edges, 5);
        assert_eq!(a.declared_batches, 6);
        assert_eq!(a.declared_admitted, 4);
        assert_eq!(a.declared_fallbacks, 1);
        assert_eq!(a.declared_escalations, 1);
        assert_eq!(a.aborts_undeclared, 2);
    }

    #[test]
    fn snapshot_summary_and_local_edges() {
        let snap = StatsSnapshot {
            aggregate: KernelStats {
                graph_edges: 10,
                escalated_edges: 4,
                escalated_checks: 2,
                ..KernelStats::default()
            },
            shard_count: 2,
            shards: vec![
                ShardStats {
                    shard: 0,
                    lock_acquisitions: 7,
                    stats: KernelStats::default(),
                },
                ShardStats {
                    shard: 1,
                    lock_acquisitions: 9,
                    stats: KernelStats::default(),
                },
            ],
            global_cycle_checks: 3,
            reorder: sbcc_graph::OrderTelemetry {
                violations: 5,
                nodes_relabeled: 12,
                slow_path_allocs: 0,
                renumber_events: 1,
                window_renumber_events: 2,
            },
        };
        assert_eq!(snap.local_only_edges(), 6);
        let text = snap.shard_summary();
        assert!(text.contains("shards=2"));
        assert!(text.contains("locks=[7,9]"));
        assert!(text.contains("escalated=4"));
        assert!(text.contains("global-cycle-checks=3"));
        assert!(text
            .contains("reorder(violations=5, relabeled=12, allocs=0, renumbers=1, windows=2)"));
    }

    #[test]
    fn totals_and_ratios() {
        let mut s = KernelStats::default();
        assert_eq!(s.total_aborts(), 0);
        assert_eq!(s.blocking_ratio(), 0.0);
        assert_eq!(s.abort_ratio(), 0.0);

        s.blocks = 10;
        s.commits = 4;
        s.aborts_deadlock = 1;
        s.aborts_commit_cycle = 2;
        s.aborts_victim = 1;
        s.aborts_ssi = 4;
        s.aborts_undeclared = 4;
        s.aborts_explicit = 5;
        assert_eq!(s.total_aborts(), 17);
        assert_eq!(s.scheduler_aborts(), 12);
        assert!((s.blocking_ratio() - 2.5).abs() < 1e-9);
        assert!((s.abort_ratio() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn summary_mentions_key_counters() {
        let s = KernelStats {
            commits: 3,
            pseudo_commits: 2,
            snapshot_reads: 7,
            aborts_ssi: 1,
            aborts_undeclared: 6,
            declared_batches: 9,
            declared_admitted: 8,
            versions_pruned: 4,
            ..KernelStats::default()
        };
        let text = s.summary();
        assert!(text.contains("commits=3"));
        assert!(text.contains("pseudo=2"));
        assert!(text.contains("snapshot-reads=7"));
        assert!(text.contains("ssi=1"));
        assert!(text.contains("undeclared=6"));
        assert!(text.contains("declared(batches=9, admitted=8"));
        assert!(text.contains("versions-pruned=4"));
    }
}
