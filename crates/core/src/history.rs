//! History recording and the off-line correctness checkers.
//!
//! The paper's correctness requirement (Definition 7) is that an execution
//! log be *serializable* and *free from cascading aborts*. The kernel
//! enforces this on-line; the [`HistoryRecorder`] keeps enough information
//! to validate it after the fact:
//!
//! * [`verify_commit_order_serializable`] replays the committed
//!   transactions **serially, in commit order**, against the objects'
//!   initial states and checks that every recorded return value is
//!   reproduced and that the final state matches the kernel's committed
//!   state. This is the strongest notion available for semantic operations:
//!   the concurrent execution is observationally equivalent to the serial
//!   one.
//! * [`verify_commit_order_respects_dependencies`] checks that whenever two
//!   committed transactions executed non-commuting (recoverable) operations,
//!   the one that executed first also committed first.

use crate::events::AbortReason;
use crate::kernel::SchedulerKernel;
use crate::object::ObjectId;
use crate::txn::{ExecutedOp, TxnId};
use sbcc_adt::{Compatibility, OpCall, OpResult, SemanticObject};
use std::collections::HashMap;

/// Everything recorded about one transaction.
#[derive(Debug, Clone)]
pub struct TxnHistory {
    /// The transaction id.
    pub id: TxnId,
    /// Operations in execution order.
    pub ops: Vec<ExecutedOp>,
    /// Whether the transaction pseudo-committed before committing.
    pub pseudo_committed: bool,
    /// Final fate.
    pub fate: Option<TxnFate>,
    /// Commit order index (only for committed transactions).
    pub commit_index: Option<u64>,
}

/// The final fate of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnFate {
    /// Actually committed.
    Committed,
    /// Aborted, with the reason.
    Aborted(AbortReason),
}

/// Recorder attached to a kernel when `record_history` is enabled.
#[derive(Debug, Clone, Default)]
pub struct HistoryRecorder {
    txns: HashMap<TxnId, TxnHistory>,
    commit_sequence: Vec<TxnId>,
}

impl HistoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        HistoryRecorder::default()
    }

    pub(crate) fn record_begin(&mut self, txn: TxnId) {
        self.txns.insert(
            txn,
            TxnHistory {
                id: txn,
                ops: Vec::new(),
                pseudo_committed: false,
                fate: None,
                commit_index: None,
            },
        );
    }

    pub(crate) fn record_op(
        &mut self,
        txn: TxnId,
        object: ObjectId,
        call: OpCall,
        result: OpResult,
        seq: u64,
    ) {
        if let Some(h) = self.txns.get_mut(&txn) {
            h.ops.push(ExecutedOp {
                object,
                call,
                result,
                seq,
            });
        }
    }

    pub(crate) fn record_pseudo_commit(&mut self, txn: TxnId) {
        if let Some(h) = self.txns.get_mut(&txn) {
            h.pseudo_committed = true;
        }
    }

    pub(crate) fn record_committed(&mut self, txn: TxnId, commit_index: u64) {
        if let Some(h) = self.txns.get_mut(&txn) {
            h.fate = Some(TxnFate::Committed);
            h.commit_index = Some(commit_index);
        }
        self.commit_sequence.push(txn);
    }

    pub(crate) fn record_aborted(&mut self, txn: TxnId, reason: AbortReason) {
        if let Some(h) = self.txns.get_mut(&txn) {
            h.fate = Some(TxnFate::Aborted(reason));
        }
    }

    /// The history of one transaction.
    pub fn txn(&self, txn: TxnId) -> Option<&TxnHistory> {
        self.txns.get(&txn)
    }

    /// All recorded transactions.
    pub fn transactions(&self) -> impl Iterator<Item = &TxnHistory> {
        self.txns.values()
    }

    /// Committed transactions in commit order.
    pub fn commit_sequence(&self) -> &[TxnId] {
        &self.commit_sequence
    }

    /// Number of recorded transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Transactions that pseudo-committed at some point.
    pub fn pseudo_committed(&self) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self
            .txns
            .values()
            .filter(|h| h.pseudo_committed)
            .map(|h| h.id)
            .collect();
        v.sort_unstable();
        v
    }
}

/// Replay the committed transactions serially in commit order and verify
/// that every recorded return value is reproduced and that the replayed
/// final state of every object equals the kernel's committed state.
///
/// Requires the kernel to have been built with `record_history = true`.
pub fn verify_commit_order_serializable(kernel: &SchedulerKernel) -> Result<(), String> {
    let history = kernel
        .history()
        .ok_or_else(|| "history recording is disabled".to_owned())?;

    // Per-object replay states, starting from the registered initial states.
    let mut replay: HashMap<ObjectId, Box<dyn SemanticObject>> = HashMap::new();
    for id in kernel.object_ids() {
        let initial = kernel
            .object_initial_state(id)
            .ok_or_else(|| format!("object {id} has no initial state"))?;
        replay.insert(id, initial.boxed_clone());
    }

    for txn in history.commit_sequence() {
        let th = history
            .txn(*txn)
            .ok_or_else(|| format!("committed transaction {txn} has no history"))?;
        for op in &th.ops {
            let state = replay
                .get_mut(&op.object)
                .ok_or_else(|| format!("operation on unknown object {}", op.object))?;
            let replayed = state.apply(&op.call);
            if replayed != op.result {
                return Err(format!(
                    "serializability violation: replaying {} of {} on {} in commit order returned {replayed} but the execution observed {}",
                    op.call, txn, op.object, op.result
                ));
            }
        }
    }

    for id in kernel.object_ids() {
        let committed = kernel
            .object_committed_state(id)
            .ok_or_else(|| format!("object {id} has no committed state"))?;
        let replayed = replay.get(&id).expect("replay state exists");
        if !replayed.state_eq(committed) {
            return Err(format!(
                "serializability violation: replayed state of {} ({}) differs from the committed state ({})",
                kernel.object_name(id).unwrap_or("?"),
                replayed.debug_state(),
                committed.debug_state()
            ));
        }
    }
    Ok(())
}

/// Verify that the commit order respects the dynamic commit dependencies:
/// for every pair of committed transactions with non-commuting operations on
/// the same object, the one whose operation executed first also committed
/// first.
pub fn verify_commit_order_respects_dependencies(kernel: &SchedulerKernel) -> Result<(), String> {
    let history = kernel
        .history()
        .ok_or_else(|| "history recording is disabled".to_owned())?;

    // Gather committed transactions and their commit indices.
    let mut commit_index: HashMap<TxnId, u64> = HashMap::new();
    for th in history.transactions() {
        if let (Some(TxnFate::Committed), Some(idx)) = (th.fate, th.commit_index) {
            commit_index.insert(th.id, idx);
        }
    }

    // For every object, look at all pairs of operations by distinct
    // committed transactions and check ordering when they do not commute.
    let mut per_object: HashMap<ObjectId, Vec<(&TxnHistory, &ExecutedOp)>> = HashMap::new();
    for th in history.transactions() {
        if !commit_index.contains_key(&th.id) {
            continue;
        }
        for op in &th.ops {
            per_object.entry(op.object).or_default().push((th, op));
        }
    }

    for (object, ops) in per_object {
        let initial = kernel
            .object_initial_state(object)
            .ok_or_else(|| format!("object {object} has no initial state"))?;
        for (ta, oa) in &ops {
            for (tb, ob) in &ops {
                if ta.id == tb.id || oa.seq >= ob.seq {
                    continue;
                }
                // oa executed before ob.
                let class = initial.classify(&ob.call, &oa.call);
                if class == Compatibility::Commutative {
                    continue;
                }
                let ia = commit_index[&ta.id];
                let ib = commit_index[&tb.id];
                if ia > ib {
                    return Err(format!(
                        "commit order violation on {object}: {} executed {} before {} executed {} (non-commuting, {class}), but {} committed after {}",
                        ta.id, oa.call, tb.id, ob.call, ta.id, tb.id
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_tracks_lifecycle() {
        let mut r = HistoryRecorder::new();
        assert!(r.is_empty());
        r.record_begin(TxnId(1));
        r.record_begin(TxnId(2));
        assert_eq!(r.len(), 2);
        r.record_op(
            TxnId(1),
            ObjectId(0),
            OpCall::nullary(0),
            OpResult::Ok,
            1,
        );
        r.record_pseudo_commit(TxnId(1));
        r.record_committed(TxnId(1), 1);
        r.record_aborted(TxnId(2), AbortReason::Explicit);
        // Records for unknown transactions are ignored rather than panicking.
        r.record_op(TxnId(9), ObjectId(0), OpCall::nullary(0), OpResult::Ok, 2);
        r.record_pseudo_commit(TxnId(9));
        r.record_aborted(TxnId(9), AbortReason::Explicit);

        let t1 = r.txn(TxnId(1)).expect("recorded");
        assert_eq!(t1.ops.len(), 1);
        assert!(t1.pseudo_committed);
        assert_eq!(t1.fate, Some(TxnFate::Committed));
        assert_eq!(t1.commit_index, Some(1));
        let t2 = r.txn(TxnId(2)).expect("recorded");
        assert_eq!(t2.fate, Some(TxnFate::Aborted(AbortReason::Explicit)));
        assert_eq!(r.commit_sequence(), &[TxnId(1)]);
        assert_eq!(r.pseudo_committed(), vec![TxnId(1)]);
        assert_eq!(r.transactions().count(), 2);
    }
}
