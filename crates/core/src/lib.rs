//! # sbcc-core — the recoverability-based concurrency-control kernel
//!
//! This crate implements the concurrency control and commit protocol of
//! *Semantics-Based Concurrency Control: Beyond Commutativity*
//! (Badrinath & Ramamritham, ICDE 1987 / ACM TODS 1992):
//!
//! * [`SchedulerKernel`] — the deterministic, synchronous scheduler:
//!   object managers with execution logs, conflict classification based on
//!   commutativity **and recoverability**, blocking with deadlock detection,
//!   commit-dependency tracking, pseudo-commit and the cascading actual
//!   commit protocol, plus recovery by intentions lists or replay-based
//!   undo.
//! * [`ShardedKernel`] — N independent scheduler kernels, each owning a
//!   disjoint (name-hashed) set of objects behind its own lock, plus a
//!   cross-shard coordinator for transaction liveness, commit votes and
//!   an escalation graph for dependency edges that span shards (see the
//!   [`shard`] module docs for the invariants and the protocol).
//! * [`Database`] — the thread-safe, session-based front-end over the
//!   sharded kernel: typed [`Handle`]s, [`Transaction`] guards that
//!   auto-abort on drop, grouped submission via [`Transaction::batch`],
//!   and the [`Database::run`] retry runner (see the [`db`] module docs
//!   for the full session model and the migration table from the old
//!   free-function API).
//! * [`aio::AsyncDatabase`] — the **async** session front-end over the
//!   same database: operations are futures that suspend instead of
//!   parking OS threads, so one executor thread multiplexes thousands of
//!   in-flight transactions. Ships an executor-agnostic API plus a
//!   minimal [`aio::block_on`] / [`aio::LocalExecutor`] harness (see the
//!   [`aio`] module docs for the sync-vs-async migration table).
//! * [`HistoryRecorder`] and the `verify_*` checkers — off-line validation
//!   that executions are serializable in commit order and respect the
//!   dynamic commit dependencies.
//! * [`ConflictPolicy::CommutativityOnly`] — the baseline scheduler the
//!   paper compares against, sharing every other mechanism so performance
//!   comparisons isolate exactly the conflict predicate.
//!
//! A map of how these layers fit together — graph substrate, kernel,
//! shard coordinator, the two session front-ends, simulator and
//! experiments — lives in `ARCHITECTURE.md` at the repository root,
//! together with the life of one transaction through
//! admission/blocking/commit.
//!
//! ## Example
//!
//! ```
//! use sbcc_core::{SchedulerKernel, SchedulerConfig, RequestOutcome, CommitOutcome};
//! use sbcc_adt::{Stack, StackOp, AdtOp, Value};
//!
//! let mut kernel = SchedulerKernel::new(SchedulerConfig::default());
//! let stack = kernel.register("jobs", Stack::new()).unwrap();
//!
//! let t1 = kernel.begin();
//! let t2 = kernel.begin();
//!
//! // Two pushes do not commute, but the second is recoverable relative to
//! // the first: both execute immediately, and T2 picks up a commit
//! // dependency on T1.
//! let r1 = kernel.request(t1, stack, StackOp::Push(Value::Int(4)).to_call()).unwrap();
//! assert!(r1.is_executed());
//! let r2 = kernel.request(t2, stack, StackOp::Push(Value::Int(2)).to_call()).unwrap();
//! match r2 {
//!     RequestOutcome::Executed { commit_deps, .. } => assert_eq!(commit_deps, vec![t1]),
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//!
//! // T2 finishes first: it pseudo-commits (complete from the user's view),
//! // and actually commits as soon as T1 terminates.
//! let c2 = kernel.commit(t2).unwrap();
//! assert!(c2.is_pseudo_commit());
//! let c1 = kernel.commit(t1).unwrap();
//! assert_eq!(c1, CommitOutcome::Committed);
//! assert!(kernel.drain_events().iter().any(|e| e.txn() == t2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aio;
pub mod chaos;
pub mod db;
pub mod errors;
pub mod events;
pub mod history;
pub mod kernel;
pub mod object;
pub mod policy;
pub mod shard;
pub mod stats;
pub mod txn;

pub use aio::{race, AsyncBatch, AsyncDatabase, AsyncTransaction, LocalExecutor, RaceWinner};
pub use chaos::{ChaosHook, ChaosPoint, ClockHook, TimeoutPoint};
pub use db::{Batch, Database, Handle, ObjectHandle, Transaction};
pub use errors::CoreError;
pub use events::{
    AbortReason, BatchOutcome, BatchStop, CommitOutcome, KernelEvent, RequestOutcome,
};
pub use history::{
    verify_commit_order_respects_dependencies, verify_commit_order_serializable, HistoryRecorder,
    TxnFate, TxnHistory,
};
pub use kernel::SchedulerKernel;
pub use object::{BlockedRequest, Classification, LogEntry, ManagedObject, ObjectId};
pub use policy::{
    ConflictPolicy, CycleDetector, RecoveryStrategy, SchedulerConfig, UndeclaredPolicy,
    VictimPolicy,
};
pub use sbcc_adt::AccessSet;
pub use sbcc_graph::{OrderTelemetry, ReorderStrategy};
pub use sbcc_wal::{FsyncPolicy, WalConfig};
/// The write-ahead-log crate, re-exported for crash-image surgery in
/// tests and tools (log-file paths, record codec).
pub use sbcc_wal as wal;
pub use shard::{
    shard_of_name, DatabaseConfig, GlobalGraph, ObjectLoc, ShardCount, ShardedKernel,
};
pub use stats::{KernelStats, NetStats, ShardStats, StatsSnapshot};
pub use txn::{BatchCall, ExecutedOp, PendingRequest, TxnId, TxnRecord, TxnState};
