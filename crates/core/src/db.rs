//! The session-based, thread-safe front-end over the sharded scheduler
//! kernel ([`ShardedKernel`]): typed [`Handle`]s, [`Transaction`] guards,
//! grouped submission through [`Batch`], and the [`Database::run`] retry
//! runner.
//!
//! # Sessions, not bare transaction ids
//!
//! The kernel itself is transaction-centric but *identifier*-based: every
//! call names a raw [`TxnId`]. Applications instead program against a
//! first-class session object: [`Database::begin`] returns a
//! [`Transaction`] guard that
//!
//! * executes typed operations ([`Transaction::exec`]) against typed
//!   [`Handle<A>`]s — `txn.exec(&stack, StackOp::Push(..))` is statically
//!   checked to be a stack operation — while [`Transaction::exec_call`]
//!   remains for erased callers;
//! * submits *groups* of operations in one kernel pass under one lock
//!   acquisition ([`Transaction::batch`]);
//! * consumes itself on [`Transaction::commit`] / [`Transaction::abort`],
//!   so a terminated session cannot be used again by construction; and
//! * **auto-aborts on drop** when neither was called — early returns and
//!   panics can no longer leak a live transaction that would block others
//!   forever.
//!
//! [`Database::run`] wraps the begin/exec/commit cycle in a closure and
//! transparently restarts it when the scheduler aborts the transaction
//! (deadlock or commit-dependency cycle), which is what most applications
//! want.
//!
//! # Sharding
//!
//! The database runs [`crate::shard::ShardedKernel`] underneath: objects
//! are partitioned across `shards` independent scheduler kernels by a hash
//! of their registration name, so sessions whose footprints live in
//! different shards never contend on a lock. [`Database::new`] takes the
//! shard count from the `SBCC_SHARDS` environment variable (default 1;
//! `SBCC_SHARDS=auto` resolves to one shard per core, see
//! [`crate::ShardCount`]); [`Database::with_config`] sets it explicitly:
//!
//! ```
//! use sbcc_core::{Database, DatabaseConfig, SchedulerConfig};
//! let db = Database::with_config(
//!     DatabaseConfig::new(SchedulerConfig::default()).with_shards(4),
//! );
//! assert_eq!(db.shard_count(), 4);
//! ```
//!
//! With one shard the behaviour is exactly the PR-2 single-kernel
//! database. With several, everything session-visible stays the same —
//! handles, blocking, batches, retry semantics, aggregate [`KernelStats`]
//! — and [`Database::stats_snapshot`] additionally exposes the per-shard
//! breakdown. See the [`crate::shard`] module docs for the sharding
//! invariants and the cross-shard commit protocol.
//!
//! # Migration from the PR-1 free-function API
//!
//! | old call                           | session call                          |
//! |------------------------------------|---------------------------------------|
//! | `db.begin() -> TxnId`              | `db.begin() -> Transaction`           |
//! | `db.invoke(txn, &h, op)`           | `txn.exec(&h, op)`                    |
//! | `db.invoke_call(txn, &h, call)`    | `txn.exec_call(&h, call)`             |
//! | `db.try_invoke_call(txn, &h, call)`| `txn.try_exec_call(&h, call)`         |
//! | `db.commit(txn)`                   | `txn.commit()`                        |
//! | `db.abort(txn)`                    | `txn.abort()` (or just drop the guard)|
//! | *(n/a)*                            | `db.run(\|txn\| …)`                   |
//! | *(n/a)*                            | `txn.batch().op(…).op(…).submit()`    |
//!
//! PR-3 note: `db.with_kernel(|k| …)` (which borrowed *the* kernel) is
//! replaced by [`Database::with_sharded_kernel`] /
//! [`crate::shard::ShardedKernel::with_shard`].
//!
//! # Blocking and wakeups
//!
//! A blocked request parks the calling OS thread until a conflicting
//! transaction terminates. Wakeups are **per transaction**: each parked
//! invocation registers a private waiter slot, and the kernel's event
//! stream delivers an outcome directly into the slot of exactly the
//! transaction it concerns. A commit therefore wakes only the threads
//! whose transactions it actually unblocked — there is no global
//! broadcast that stampedes every parked thread on every termination.
//!
//! The slot is **two-variant**: a sync session sleeps on its condvar,
//! while an async session ([`crate::aio`]) registers a
//! [`std::task::Waker`] in the same slot and suspends its future. The
//! fill path serves both, so the kernel, batching and event-delivery
//! layers are completely agnostic to how a waiter sleeps — if parking a
//! thread per blocked transaction is your bottleneck, switch to
//! [`crate::aio::AsyncDatabase`] (migration table in the [`crate::aio`]
//! module docs) and multiplex thousands of sessions on one thread.
//!
//! An outcome that settles while no thread is parked (possible after a
//! non-blocking [`Transaction::try_exec_call`], or when the kernel's
//! internal retry settles a request before the caller parks) is kept in a
//! `delivered` map and claimed by the next [`Transaction::settle_pending`]
//! call.
//!
//! The [`Database`] handle is cheaply cloneable and can be shared across
//! threads; each [`Transaction`] is owned by (and intended for) one thread
//! at a time.
//!
//! # Example
//!
//! ```
//! use sbcc_core::{Database, SchedulerConfig};
//! use sbcc_adt::{Counter, CounterOp, OpResult, Stack, StackOp, Value};
//!
//! let db = Database::new(SchedulerConfig::default());
//! let jobs = db.register("jobs", Stack::new());
//! let hits = db.register("hits", Counter::new());
//!
//! // A grouped submission: both operations admitted in one kernel pass.
//! let txn = db.begin();
//! let results = txn
//!     .batch()
//!     .op(&jobs, StackOp::Push(Value::Int(42)))
//!     .op(&hits, CounterOp::Increment(1))
//!     .submit()
//!     .unwrap();
//! assert_eq!(results, vec![OpResult::Ok, OpResult::Ok]);
//! txn.commit().unwrap();
//!
//! // The closure runner retries on scheduler aborts and commits on Ok.
//! let top = db
//!     .run(|txn| txn.exec(&jobs, StackOp::Top))
//!     .unwrap();
//! assert_eq!(top, OpResult::Value(Value::Int(42)));
//! ```

use crate::chaos::{self, sync::Condvar, sync::Mutex, ChaosPoint};
use crate::errors::CoreError;
use crate::events::{BatchStop, CommitOutcome, KernelEvent, RequestOutcome};
use crate::object::ObjectId;
use crate::policy::SchedulerConfig;
use crate::shard::{DatabaseConfig, ObjectLoc, ShardedKernel};
use crate::stats::{KernelStats, StatsSnapshot};
use crate::txn::{BatchCall, TxnId, TxnState};
use sbcc_adt::{AccessSet, AdtOp, AdtSpec, OpCall, OpResult, SemanticObject};
use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

/// A handle to an object registered with a [`Database`].
///
/// Handles are cheap to clone (the registration name is shared behind an
/// [`Arc`]) and can be freely copied into worker threads. A handle carries
/// the object's shard location, so the session hot path routes straight to
/// the owning shard without any directory lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectHandle {
    id: ObjectId,
    loc: ObjectLoc,
    name: Arc<str>,
}

impl ObjectHandle {
    /// The (database-global) object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The object's shard location.
    pub fn loc(&self) -> ObjectLoc {
        self.loc
    }

    /// The shard owning this object.
    pub fn shard(&self) -> u32 {
        self.loc.shard
    }

    /// The registration name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A typed handle: an [`ObjectHandle`] plus a compile-time tag naming the
/// [`AdtSpec`] registered under it, so [`Transaction::exec`] only accepts
/// operations of that data type.
///
/// Dereferences to the underlying [`ObjectHandle`], so a typed handle can
/// be passed anywhere an erased one is expected (including
/// [`Transaction::exec_call`]).
#[derive(Debug)]
pub struct Handle<A: AdtSpec> {
    raw: ObjectHandle,
    _adt: PhantomData<fn() -> A>,
}

// Manual impls: `A` itself is only a tag and never stored, so the derives'
// `A: Clone` / `A: PartialEq` bounds would be spurious.
impl<A: AdtSpec> Clone for Handle<A> {
    fn clone(&self) -> Self {
        Handle {
            raw: self.raw.clone(),
            _adt: PhantomData,
        }
    }
}

impl<A: AdtSpec> PartialEq for Handle<A> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}

impl<A: AdtSpec> Eq for Handle<A> {}

impl<A: AdtSpec> std::ops::Deref for Handle<A> {
    type Target = ObjectHandle;

    fn deref(&self) -> &ObjectHandle {
        &self.raw
    }
}

impl<A: AdtSpec> Handle<A> {
    /// Borrow the erased handle.
    pub fn erased(&self) -> &ObjectHandle {
        &self.raw
    }

    /// Discard the type tag.
    pub fn into_erased(self) -> ObjectHandle {
        self.raw
    }
}

/// One waiting invocation's private rendezvous: the delivering thread
/// stores the outcome and wakes the owner — *however the owner sleeps*.
///
/// The slot is the two-variant waiter the async front-end rides on:
///
/// * a **sync** session parks its OS thread on the condvar
///   ([`WaiterSlot::await_outcome`]);
/// * an **async** session stores a [`Waker`] and suspends its future
///   ([`WaiterSlot::poll_outcome`]).
///
/// [`WaiterSlot::fill`] serves both at once (it signals the condvar *and*
/// wakes a registered waker), so every shard wakeup path stays completely
/// agnostic to which front-end is waiting. A slot has exactly one owner;
/// only the delivery side is shared.
#[derive(Default)]
pub(crate) struct WaiterSlot {
    state: Mutex<SlotState>,
    cond: Condvar,
}

#[derive(Default)]
struct SlotState {
    outcome: Option<RequestOutcome>,
    /// The waker of the async task awaiting this slot, when the owner is a
    /// future rather than a parked thread. Re-registered on every poll, so
    /// a task that migrates executors between polls still wakes correctly.
    waker: Option<std::task::Waker>,
}

impl WaiterSlot {
    /// Deliver an outcome and wake the (single) owner, whether it is a
    /// parked thread or a suspended future.
    fn fill(&self, outcome: RequestOutcome) {
        let waker = {
            let mut state = self.state.lock();
            state.outcome = Some(outcome);
            state.waker.take()
        };
        self.cond.notify_one();
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    /// Park the calling OS thread until an outcome is delivered (the sync
    /// variant).
    fn await_outcome(&self) -> RequestOutcome {
        let mut state = self.state.lock();
        loop {
            if let Some(outcome) = state.outcome.take() {
                return outcome;
            }
            self.cond.wait(&mut state);
        }
    }

    /// The async variant: return the outcome if it has been delivered,
    /// otherwise register `cx`'s waker and suspend.
    ///
    /// The outcome check and the waker registration happen under the same
    /// lock [`WaiterSlot::fill`] takes, so the wake-before-poll race is
    /// closed: a fill that ran before this poll left the outcome behind
    /// (returned now), and a fill racing this poll either sees the freshly
    /// stored waker or lost the lock to us and its outcome is already
    /// visible.
    pub(crate) fn poll_outcome(&self, cx: &mut std::task::Context<'_>) -> std::task::Poll<RequestOutcome> {
        let mut state = self.state.lock();
        match state.outcome.take() {
            Some(outcome) => std::task::Poll::Ready(outcome),
            None => {
                state.waker = Some(cx.waker().clone());
                std::task::Poll::Pending
            }
        }
    }

    /// Take the outcome if one has been delivered (used when a cancelled
    /// async waiter unregisters itself).
    pub(crate) fn try_take(&self) -> Option<RequestOutcome> {
        self.state.lock().outcome.take()
    }
}

/// The rendezvous state: one map of settled-but-unclaimed outcomes, one map
/// of parked invocations. Guarded by its own small mutex, separate from the
/// shard kernels — delivering a wakeup never holds a kernel lock.
#[derive(Default)]
struct SessionState {
    /// Outcomes delivered to transactions whose pending request completed
    /// while no thread was parked waiting for it (e.g. after a
    /// non-blocking [`Transaction::try_exec_call`]); claimed by
    /// [`Transaction::settle_pending`] or discarded by the transaction's
    /// next submission or termination.
    delivered: HashMap<TxnId, RequestOutcome>,
    /// The waiter slot of every currently waiting invocation (parked
    /// thread or suspended future), by transaction.
    waiters: HashMap<TxnId, Arc<WaiterSlot>>,
}

/// The session-local bookkeeping shared by the sync [`Transaction`] guard
/// and the async [`crate::aio::AsyncTransaction`]: the transaction id, the
/// enrollment cache and the pending-request flag. Both front-ends drive
/// the same [`Database`] internals through this one core, so the kernel,
/// batching and event-delivery paths never know which of the two is
/// calling.
pub(crate) struct SessionCore {
    id: TxnId,
    /// Session-local cache of the shards this transaction is enrolled in.
    /// Lets the steady-state exec path skip the cross-shard coordinator
    /// (the cache is sound because enrollment only ever grows while the
    /// transaction is live). A `RefCell` suffices: sessions are `!Sync`.
    enrolled: RefCell<Vec<u32>>,
    /// `true` while a non-blocking submission is blocked inside a shard
    /// kernel with its outcome unclaimed. The session layer uses it to
    /// enforce the single-kernel contract across shards (no further
    /// submissions while blocked — another shard's kernel would not know)
    /// and to settle without racing the outcome delivery.
    pending: std::cell::Cell<bool>,
    /// `Some(begin stamp)` for sessions opened through
    /// [`Database::begin_snapshot`] / `AsyncDatabase::begin_snapshot`:
    /// read-only operations route to the multi-version snapshot path
    /// (reading the newest committed version at or below the stamp);
    /// everything else takes the ordinary classified path.
    snapshot: Option<u64>,
}

impl std::fmt::Debug for SessionCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionCore")
            .field("id", &self.id)
            .field("pending", &self.pending.get())
            .finish_non_exhaustive()
    }
}

impl SessionCore {
    fn new(id: TxnId) -> Self {
        SessionCore {
            id,
            enrolled: RefCell::new(Vec::new()),
            pending: std::cell::Cell::new(false),
            snapshot: None,
        }
    }

    fn new_snapshot(id: TxnId, begin: u64) -> Self {
        SessionCore {
            snapshot: Some(begin),
            ..SessionCore::new(id)
        }
    }

    /// The transaction this session drives.
    pub(crate) fn id(&self) -> TxnId {
        self.id
    }

    /// The snapshot begin stamp, for sessions opened through
    /// `begin_snapshot`.
    pub(crate) fn snapshot(&self) -> Option<u64> {
        self.snapshot
    }

    /// Whether a blocked submission's outcome is still unclaimed.
    pub(crate) fn pending(&self) -> bool {
        self.pending.get()
    }

    /// Set or clear the pending flag.
    pub(crate) fn set_pending(&self, pending: bool) {
        self.pending.set(pending);
    }
}

struct Shared {
    /// The sharded kernel (internally locked per shard; see
    /// [`crate::shard`]).
    kernel: ShardedKernel,
    sessions: Mutex<SessionState>,
    /// Lock-free count of entries in `sessions.delivered`, so the exec
    /// fast path (nothing ever delivered — the overwhelmingly common
    /// case) skips the sessions mutex entirely. Only advisory: a zero
    /// reading is sound because a delivery for transaction `T` can only
    /// exist while `T` has a parked/pending request, and `T`'s own session
    /// thread — the only reader of `T`'s entries — is not submitting then.
    delivered_count: std::sync::atomic::AtomicUsize,
    /// Cached [`crate::shard::DECLARED_ENV`] reading: when `true`, batches
    /// submitted without an explicit declaration derive one from their own
    /// call list (every touched object declared written), routing the
    /// whole workload through the group-admission path.
    declare_by_default: bool,
}

impl Shared {
    /// Remove and return `txn`'s delivered outcome, skipping the lock when
    /// the map is known empty.
    fn take_delivered(&self, txn: TxnId) -> Option<RequestOutcome> {
        use std::sync::atomic::Ordering;
        if self.delivered_count.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut sessions = self.sessions.lock();
        let outcome = sessions.delivered.remove(&txn);
        if outcome.is_some() {
            self.delivered_count.fetch_sub(1, Ordering::Release);
        }
        outcome
    }
}

/// A thread-safe transactional object store implementing the paper's
/// protocol. See the [module documentation](self) for the session model.
#[derive(Clone)]
pub struct Database {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database").finish_non_exhaustive()
    }
}

impl Database {
    /// Create a database with the given scheduler configuration. The shard
    /// count is taken from the `SBCC_SHARDS` environment variable
    /// (default 1, `auto` = one shard per core); use
    /// [`Database::with_config`] to set it explicitly.
    pub fn new(config: SchedulerConfig) -> Self {
        Database::with_config(DatabaseConfig::new(config))
    }

    /// Create a database with an explicit [`DatabaseConfig`] (scheduler
    /// configuration, shard count, durability).
    ///
    /// # Panics
    ///
    /// Panics when the configuration enables the write-ahead log and
    /// opening or replaying it fails — a database that silently dropped
    /// its durable state would be worse than no database. Use
    /// [`Database::try_with_config`] to handle recovery failures.
    pub fn with_config(config: DatabaseConfig) -> Self {
        Database::try_with_config(config)
            .unwrap_or_else(|e| panic!("opening the database failed: {e}"))
    }

    /// Create a database with an explicit [`DatabaseConfig`], surfacing
    /// write-ahead-log open/replay failures instead of panicking.
    ///
    /// With `config.wal` set, this opens the log directory (repairing any
    /// torn tail and dropping unmarked multi-shard fragments — see
    /// [`sbcc_wal::Wal::open`]), **replays** the surviving records through
    /// the ordinary session API — re-registering each object via the
    /// recovery factory, re-executing each committed transaction's
    /// operations in global log order and checking every replayed result
    /// against the logged one — and only then attaches the log, so replay
    /// itself is not re-logged. The group-commit flush window is routed
    /// through [`chaos::TimeoutPoint::GroupCommit`], putting it under DST
    /// virtual-clock control.
    pub fn try_with_config(config: DatabaseConfig) -> Result<Self, CoreError> {
        let wal_config = config.wal.clone();
        let db = Database {
            shared: Arc::new(Shared {
                kernel: ShardedKernel::new(config),
                sessions: Mutex::new(SessionState::default()),
                delivered_count: std::sync::atomic::AtomicUsize::new(0),
                declare_by_default: crate::shard::declared_from_env(),
            }),
        };
        if let Some(wal_config) = wal_config {
            let clock: sbcc_wal::GroupClock =
                Arc::new(|| chaos::timeout_fires(chaos::TimeoutPoint::GroupCommit));
            let (wal, records) =
                sbcc_wal::Wal::open(&wal_config, db.shard_count(), Some(clock))
                    .map_err(|e| CoreError::Durability(e.to_string()))?;
            db.replay(&records)?;
            db.shared.kernel.attach_wal(Arc::new(wal));
        }
        Ok(db)
    }

    /// Re-apply recovered log records through the session API. Sequential
    /// and single-threaded, so every commit must be an actual commit (a
    /// pseudo-commit would mean a dependency on a live transaction — there
    /// are none) and every replayed result must equal the logged one (the
    /// log replays deterministically from the empty state).
    fn replay(&self, records: &[sbcc_wal::SequencedRecord]) -> Result<(), CoreError> {
        let mut handles: HashMap<&str, ObjectHandle> = HashMap::new();
        let mut replayed_multis: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for rec in records {
            match &rec.record {
                sbcc_wal::WalRecord::Register { name, type_name } => {
                    let object =
                        sbcc_wal::factory::instantiate(type_name).ok_or_else(|| {
                            CoreError::Durability(format!(
                                "log registers object {name:?} with type {type_name:?}, \
                                 which the recovery factory cannot reconstruct"
                            ))
                        })?;
                    let handle = self.register_object(name.clone(), object)?;
                    handles.insert(name, handle);
                }
                sbcc_wal::WalRecord::Commit { multi_gid, ops } => {
                    // A multi-shard commit is logged as one fragment per
                    // touched shard; replay them as the single transaction
                    // they were. The fragments are gathered at the first
                    // fragment's position: any record logged between two
                    // fragments was classified against the multi's
                    // then-uncommitted operations, so it commutes with
                    // them and the reorder is state-invisible.
                    let mut gathered: Vec<&sbcc_wal::LoggedOp> = Vec::new();
                    if let Some(gid) = multi_gid {
                        if !replayed_multis.insert(*gid) {
                            continue;
                        }
                        for other in records {
                            if let sbcc_wal::WalRecord::Commit {
                                multi_gid: Some(g),
                                ops,
                            } = &other.record
                            {
                                if g == gid {
                                    gathered.extend(ops.iter());
                                }
                            }
                        }
                    } else {
                        gathered.extend(ops.iter());
                    }
                    // Replay the whole commit as one *declared* batch —
                    // every logged object declared written. Sequential
                    // replay means the footprint is always quiescent, so
                    // each recovered transaction is group-admitted in a
                    // single scan with zero per-op classification; the
                    // per-op result comparison below still validates every
                    // call against the log.
                    let txn = self.begin();
                    let mut batch = txn.batch();
                    for op in &gathered {
                        let handle = handles.get(op.object.as_str()).ok_or_else(|| {
                            CoreError::Durability(format!(
                                "log commit references unregistered object {:?}",
                                op.object
                            ))
                        })?;
                        batch.add_declare_write(handle);
                        batch.add_call(handle, op.call.clone());
                    }
                    let results = batch.submit()?;
                    debug_assert_eq!(results.len(), gathered.len());
                    for (result, op) in results.iter().zip(&gathered) {
                        if *result != op.result {
                            return Err(CoreError::Durability(format!(
                                "replay diverged on object {:?} op {}: logged result \
                                 {}, replayed {}",
                                op.object, op.call, op.result, result
                            )));
                        }
                    }
                    match txn.commit()? {
                        CommitOutcome::Committed => {}
                        CommitOutcome::PseudoCommitted { .. } => {
                            return Err(CoreError::Durability(
                                "sequential replay produced a pseudo-commit".to_owned(),
                            ))
                        }
                    }
                }
                // Markers were consumed by `Wal::open`'s fragment filter.
                sbcc_wal::WalRecord::Marker { .. } => {}
            }
        }
        Ok(())
    }

    /// Number of scheduler-kernel shards behind this database.
    pub fn shard_count(&self) -> usize {
        self.shared.kernel.shard_count()
    }

    /// Register a typed atomic data type instance and get a typed handle.
    ///
    /// # Panics
    ///
    /// Panics if an object with the same name is already registered; use
    /// [`Database::try_register`] for a fallible variant.
    pub fn register<A: AdtSpec>(&self, name: impl Into<String>, adt: A) -> Handle<A> {
        self.try_register(name, adt)
            .expect("object name already registered")
    }

    /// Register a typed atomic data type instance, failing on duplicate
    /// names.
    pub fn try_register<A: AdtSpec>(
        &self,
        name: impl Into<String>,
        adt: A,
    ) -> Result<Handle<A>, CoreError> {
        let name = name.into();
        let (id, loc) = self.shared.kernel.register(name.clone(), adt)?;
        Ok(Handle {
            raw: ObjectHandle {
                id,
                loc,
                name: name.into(),
            },
            _adt: PhantomData,
        })
    }

    /// Register an erased semantic object.
    pub fn register_object(
        &self,
        name: impl Into<String>,
        object: Box<dyn SemanticObject>,
    ) -> Result<ObjectHandle, CoreError> {
        let name = name.into();
        let (id, loc) = self.shared.kernel.register_object(name.clone(), object)?;
        Ok(ObjectHandle {
            id,
            loc,
            name: name.into(),
        })
    }

    /// Look up an existing registration by name, yielding an erased handle.
    ///
    /// This matters for durable databases: reopening a write-ahead-logged
    /// directory re-registers every logged object during replay, so a
    /// session needs handles to objects this process never registered.
    pub fn object_handle(&self, name: &str) -> Option<ObjectHandle> {
        let id = self.shared.kernel.object_id(name)?;
        let loc = self.shared.kernel.object_loc(id)?;
        Some(ObjectHandle {
            id,
            loc,
            name: name.into(),
        })
    }

    /// Typed variant of [`Database::object_handle`]: the registered
    /// object's type is checked against `A` before a typed handle is
    /// handed out, so [`Transaction::exec`] stays type-safe across
    /// recovery boundaries.
    pub fn handle<A: AdtSpec>(&self, name: &str) -> Option<Handle<A>> {
        let raw = self.object_handle(name)?;
        let matches = self
            .shared
            .kernel
            .with_object_committed(raw.id(), |o| o.type_name() == A::TYPE_NAME)?;
        matches.then_some(Handle {
            raw,
            _adt: PhantomData,
        })
    }

    /// Begin a transaction session.
    ///
    /// The returned guard aborts the transaction when dropped without an
    /// explicit [`Transaction::commit`] or [`Transaction::abort`].
    pub fn begin(&self) -> Transaction {
        Transaction {
            core: self.begin_session(),
            db: self.clone(),
            finished: false,
            _not_sync: PhantomData,
        }
    }

    /// Begin a transaction and hand back the bare session core (shared
    /// entry point of the sync and async front-ends).
    pub(crate) fn begin_session(&self) -> SessionCore {
        SessionCore::new(self.shared.kernel.begin())
    }

    /// Begin a **snapshot** transaction session: read-only operations
    /// observe the newest committed version at or below the begin stamp —
    /// no classification, no blocking, no dependency-graph edges — while
    /// writes (and reads of objects this transaction has written) still
    /// take the classified path. Serializability is preserved by SSI
    /// rw-antidependency tracking: a transaction completing a dangerous
    /// structure is aborted with
    /// [`AbortReason::SsiConflict`](crate::AbortReason::SsiConflict)
    /// (a scheduler-initiated abort, so [`Database::run`]-style retry
    /// loops restart it transparently).
    ///
    /// The stamp is acquired under the coordinator's termination lock, so
    /// a snapshot never observes a half-applied multi-shard commit.
    ///
    /// ```
    /// use sbcc_core::{Database, SchedulerConfig};
    /// use sbcc_adt::{Counter, CounterOp, OpResult, Value};
    ///
    /// let db = Database::new(SchedulerConfig::default());
    /// let c = db.register("c", Counter::new());
    /// let w = db.begin();
    /// w.exec(&c, CounterOp::Increment(5)).unwrap();
    /// w.commit().unwrap();
    ///
    /// let snap = db.begin_snapshot();
    /// // A writer committing *after* the snapshot began is invisible:
    /// let w = db.begin();
    /// w.exec(&c, CounterOp::Increment(100)).unwrap();
    /// w.commit().unwrap();
    /// assert_eq!(
    ///     snap.exec(&c, CounterOp::Read).unwrap(),
    ///     OpResult::Value(Value::Int(5)),
    /// );
    /// snap.commit().unwrap();
    /// ```
    pub fn begin_snapshot(&self) -> Transaction {
        Transaction {
            core: self.begin_snapshot_session(),
            db: self.clone(),
            finished: false,
            _not_sync: PhantomData,
        }
    }

    /// [`Database::begin_snapshot`] returning the bare session core
    /// (shared entry point of the sync and async front-ends).
    pub(crate) fn begin_snapshot_session(&self) -> SessionCore {
        let (id, begin) = self.shared.kernel.begin_snapshot();
        SessionCore::new_snapshot(id, begin)
    }

    /// Run a transaction body, committing on success and transparently
    /// **retrying from scratch** when the scheduler aborts the transaction
    /// (deadlock cycle, commit-dependency cycle, or victim selection).
    ///
    /// The closure receives a fresh [`Transaction`] per attempt; any other
    /// error — including an [`CoreError::Aborted`] of a *different*
    /// transaction the closure chose to propagate — is returned as-is, and
    /// the attempt's transaction is aborted by its guard.
    ///
    /// # Retry classes
    ///
    /// This table is the retry contract, shared verbatim by the async
    /// front-end ([`crate::aio::AsyncDatabase::run`]): exactly these
    /// errors, observed for **the current attempt's own transaction**,
    /// restart the body with a fresh transaction; everything else is
    /// returned to the caller as-is.
    ///
    /// | Class | Surfaced as | Retried? |
    /// |---|---|---|
    /// | Deadlock refusal: blocking would close a wait-for cycle | [`CoreError::Aborted`] with [`AbortReason::DeadlockCycle`](crate::AbortReason::DeadlockCycle) from a body operation | yes |
    /// | Commit-dependency refusal: a recoverable execution would close a commit-dependency cycle (the paper's Lemma-4 guard) | [`CoreError::Aborted`] with [`AbortReason::CommitDependencyCycle`](crate::AbortReason::CommitDependencyCycle) | yes |
    /// | Victim selection: another session's request chose this transaction as its cycle victim (only under [`crate::VictimPolicy::Youngest`]) | [`CoreError::Aborted`] with [`AbortReason::VictimSelected`](crate::AbortReason::VictimSelected) | yes |
    /// | Victim abort racing its own outcome delivery (a cross-shard race introduced with the sharded kernel): the victim's session observes the terminated state before the abort event carrying the reason reaches it | [`CoreError::InvalidState`] with `state:` [`TxnState::Aborted`] for the attempt's own transaction, from a body operation **or** from the final commit | yes |
    /// | Explicit aborts, validation errors, aborts of *other* transactions the body propagates | any other [`CoreError`] | no — returned as-is |
    /// | Retry budget exhausted: a retryable class above recurred more than [`SchedulerConfig::max_retries`] times | [`CoreError::RetriesExhausted`] | no — the livelock guardrail |
    ///
    /// The `InvalidState { state: Aborted }` row is safe to classify as a
    /// scheduler abort because the guard API gives the closure no way to
    /// abort its own transaction and keep running — only the scheduler can
    /// have terminated it out from under a live attempt.
    ///
    /// Like an aborted-and-restarted terminal in the paper's model, the
    /// retry loop runs until the body either succeeds or fails for a
    /// non-scheduler reason; under the default
    /// [`crate::VictimPolicy::Requester`] every abort removes the
    /// requester's operations, so some participant of each cycle always
    /// makes progress. As a guardrail against adversarial schedules (and
    /// against fault-injection harnesses deliberately aborting every
    /// attempt), the loop gives up after
    /// [`SchedulerConfig::max_retries`] retries with
    /// [`CoreError::RetriesExhausted`]; the default budget (10 000) is far
    /// beyond anything a healthy workload reaches.
    ///
    /// # Example
    ///
    /// A commit-dependency cycle refused on the first attempt and gone on
    /// the second — single-threaded, so the retry is fully deterministic:
    ///
    /// ```
    /// use sbcc_core::{ConflictPolicy, Database, SchedulerConfig};
    /// use sbcc_adt::{Stack, StackOp, Value};
    ///
    /// let db = Database::new(
    ///     SchedulerConfig::default().with_policy(ConflictPolicy::Recoverability),
    /// );
    /// let a = db.register("a", Stack::new());
    /// let b = db.register("b", Stack::new());
    ///
    /// // T1 holds an uncommitted push on `a`.
    /// let t1 = db.begin();
    /// t1.exec(&a, StackOp::Push(Value::Int(1))).unwrap();
    ///
    /// let mut attempts = 0;
    /// db.run(|txn| {
    ///     attempts += 1;
    ///     txn.exec(&b, StackOp::Push(Value::Int(2)))?;
    ///     if attempts == 1 {
    ///         // T1 pushes `b` too: T1 now commit-depends on this attempt…
    ///         t1.exec(&b, StackOp::Push(Value::Int(3)))?;
    ///         // …so pushing `a` would close a commit-dependency cycle:
    ///         // the scheduler aborts this attempt, and `run` retries.
    ///         txn.exec(&a, StackOp::Push(Value::Int(4)))?;
    ///     }
    ///     Ok(())
    /// })
    /// .unwrap();
    /// assert_eq!(attempts, 2, "one scheduler abort, one clean attempt");
    /// assert_eq!(db.stats().aborts_commit_cycle, 1);
    /// t1.commit().unwrap();
    /// ```
    pub fn run<R>(
        &self,
        mut body: impl FnMut(&Transaction) -> Result<R, CoreError>,
    ) -> Result<R, CoreError> {
        let max_retries = self.max_retries();
        let mut attempts: usize = 0;
        loop {
            attempts += 1;
            let txn = self.begin();
            let id = txn.id();
            let err = match body(&txn) {
                Ok(value) => match txn.commit() {
                    Ok(_) => return Ok(value),
                    Err(e) => e,
                },
                Err(e) => e,
            };
            // The commit-side `InvalidState { state: Aborted }` means the
            // transaction was picked as a cycle victim between the body's
            // last operation and the commit. The body-side one is a victim
            // abort racing the delivery of its outcome: another session's
            // thread aborts this attempt's transaction inside a shard, and
            // this thread's next submission observes the terminated state
            // *before* the abort event (with its reason) reaches the
            // session layer. The attempt's own transaction can only be
            // `Aborted` without this closure's involvement by the
            // scheduler — the guard API offers the closure no way to abort
            // it — so both are scheduler aborts and retried like one.
            let retryable = err.is_scheduler_abort_of(id)
                || matches!(
                    err,
                    CoreError::InvalidState {
                        txn: t,
                        state: TxnState::Aborted,
                        ..
                    } if t == id
                );
            if !retryable {
                return Err(err);
            }
            if attempts > max_retries {
                return Err(CoreError::RetriesExhausted { txn: id, attempts });
            }
        }
    }

    /// The configured retry budget shared by both closure runners.
    pub(crate) fn max_retries(&self) -> usize {
        self.shared.kernel.config().scheduler.max_retries
    }

    /// The current state of a transaction.
    pub fn txn_state(&self, txn: TxnId) -> Option<TxnState> {
        self.shared.kernel.txn_state(txn)
    }

    /// The commit outcome of a transaction that has (pseudo-)committed:
    /// `Committed` once the actual commit happened, `PseudoCommitted` while
    /// it is still waiting on its commit dependencies, `None` otherwise.
    pub fn outcome_of(&self, txn: TxnId) -> Option<CommitOutcome> {
        match self.shared.kernel.txn_state(txn)? {
            TxnState::Committed => Some(CommitOutcome::Committed),
            TxnState::PseudoCommitted => Some(CommitOutcome::PseudoCommitted {
                waiting_on: self.shared.kernel.commit_dependencies_of(txn),
            }),
            _ => None,
        }
    }

    /// Snapshot of the aggregate kernel counters (summed across shards;
    /// transaction-lifecycle counters deduplicated by the coordinator).
    pub fn stats(&self) -> KernelStats {
        self.shared.kernel.stats()
    }

    /// The aggregate counters plus the per-shard breakdown (lock
    /// acquisitions, escalations, local vs. mirrored edges).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.shared.kernel.stats_snapshot()
    }

    /// Number of cycle-detection invocations so far (all shards plus the
    /// cross-shard escalation graph).
    pub fn cycle_checks(&self) -> u64 {
        self.shared.kernel.cycle_checks()
    }

    /// The current value of the global commit clock (every actual commit
    /// draws one stamp; snapshots read at their begin stamp).
    pub fn current_stamp(&self) -> u64 {
        self.shared.kernel.current_stamp()
    }

    /// The smallest begin stamp over live snapshot transactions, or `None`
    /// when no snapshot is live (committing transactions then drop
    /// superseded versions immediately).
    pub fn oldest_snapshot_stamp(&self) -> Option<u64> {
        self.shared.kernel.oldest_snapshot_stamp()
    }

    /// Total number of retained historical object versions across all
    /// shards (versions still needed by live snapshots).
    pub fn version_depth(&self) -> usize {
        self.shared.kernel.version_depth()
    }

    /// Sweep every shard, pruning historical versions no live snapshot can
    /// reach. Returns the number of versions dropped; the cumulative count
    /// (including the pruning commits perform themselves) is
    /// [`KernelStats::versions_pruned`](crate::KernelStats::versions_pruned).
    pub fn prune_versions(&self) -> u64 {
        self.shared.kernel.prune_versions()
    }

    /// Run the commit-order serializability checker on every shard
    /// (requires history recording, which [`SchedulerConfig::default`]
    /// enables).
    pub fn verify_serializable(&self) -> Result<(), String> {
        self.shared.kernel.verify_serializable()
    }

    /// Run the commit-order dependency checker on every shard.
    pub fn verify_commit_dependencies(&self) -> Result<(), String> {
        self.shared.kernel.verify_commit_dependencies()
    }

    /// Check kernel invariants on every shard (acyclic graphs, consistent
    /// logs and queues) plus the escalation graph.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.shared.kernel.check_invariants()
    }

    /// Run a closure against the sharded kernel (advanced / test use).
    /// Replaces the PR-2 `with_kernel` (there is no longer a single kernel
    /// to borrow; use [`ShardedKernel::with_shard`] for one shard).
    pub fn with_sharded_kernel<R>(&self, f: impl FnOnce(&ShardedKernel) -> R) -> R {
        let result = f(&self.shared.kernel);
        self.deliver_events();
        result
    }

    // ------------------------------------------------------------------
    // Session internals (reached through `Transaction`)
    // ------------------------------------------------------------------

    /// Gate a new submission on the session's previous one.
    ///
    /// A `delivered` entry exists when an earlier request settled while no
    /// thread was parked and the caller never claimed it with
    /// [`Transaction::settle_pending`]. A stale *abort* makes the whole
    /// transaction dead and is surfaced now; a stale *result* was
    /// deliberately left unclaimed and is discarded so it cannot be
    /// mistaken for the outcome of the submission that follows.
    ///
    /// While a non-blocking submission is still **pending** (blocked
    /// inside a shard kernel, no outcome delivered yet), the submission is
    /// rejected with the same `InvalidState { state: Blocked }` error the
    /// unsharded kernel returns — without this gate, a request routed to a
    /// *different* shard would be admitted there, because only the shard
    /// holding the pending request knows the transaction is blocked.
    pub(crate) fn admit_submission(
        &self,
        txn: &SessionCore,
        action: &'static str,
    ) -> Result<(), CoreError> {
        let id = txn.id;
        let delivered = self.shared.take_delivered(id);
        if txn.pending.get() {
            return match delivered {
                Some(RequestOutcome::Executed { .. }) => {
                    // Settled while unclaimed: the stale result is
                    // discarded and the session is submittable again.
                    txn.pending.set(false);
                    Ok(())
                }
                Some(RequestOutcome::Aborted { reason }) => {
                    txn.pending.set(false);
                    Err(CoreError::Aborted { txn: id, reason })
                }
                Some(RequestOutcome::Blocked { .. }) => {
                    unreachable!("blocked outcomes are never delivered")
                }
                None => Err(CoreError::InvalidState {
                    txn: id,
                    state: TxnState::Blocked,
                    action,
                }),
            };
        }
        match delivered {
            Some(RequestOutcome::Aborted { reason }) => {
                Err(CoreError::Aborted { txn: id, reason })
            }
            _ => Ok(()),
        }
    }

    /// Enroll the session's transaction into a shard if its session-local
    /// cache has not seen the shard yet. Steady state (every shard already
    /// touched) skips the coordinator entirely: the only lock an exec
    /// takes is the owning shard's.
    fn ensure_session_enrolled(
        &self,
        txn: &SessionCore,
        shard: u32,
        action: &'static str,
    ) -> Result<(), CoreError> {
        if txn.enrolled.borrow().contains(&shard) {
            return Ok(());
        }
        self.shared.kernel.ensure_enrolled(txn.id, shard, action)?;
        txn.enrolled.borrow_mut().push(shard);
        Ok(())
    }

    pub(crate) fn check_loc(&self, loc: ObjectLoc) -> Result<(), CoreError> {
        if (loc.shard as usize) < self.shared.kernel.shard_count() {
            Ok(())
        } else {
            Err(CoreError::UnknownObject(format!(
                "object of shard {} in a {}-shard database",
                loc.shard,
                self.shared.kernel.shard_count()
            )))
        }
    }

    /// Snapshot-path routing shared by the sync and async exec paths: for
    /// a snapshot session, try the multi-version read first. `Ok(Some)` is
    /// the settled result; `Ok(None)` (not a snapshot session, not a pure
    /// observer, or an object this transaction has written) falls through
    /// to the classified path.
    fn snapshot_read_raw(
        &self,
        txn: &SessionCore,
        loc: ObjectLoc,
        call: &OpCall,
    ) -> Result<Option<OpResult>, CoreError> {
        if txn.snapshot.is_none() {
            return Ok(None);
        }
        let result = self.shared.kernel.snapshot_read(txn.id, loc, call);
        // Deliver before `?`: an SSI abort inside the read releases the
        // transaction's claims, and the resulting grants to blocked
        // sessions sit in the event queue.
        self.deliver_events();
        result
    }

    fn exec_call_raw(
        &self,
        txn: &SessionCore,
        loc: ObjectLoc,
        call: OpCall,
    ) -> Result<OpResult, CoreError> {
        let id = txn.id;
        self.check_loc(loc)?;
        self.admit_submission(txn, "request an operation")?;
        if let Some(result) = self.snapshot_read_raw(txn, loc, &call)? {
            return Ok(result);
        }
        self.ensure_session_enrolled(txn, loc.shard, "request an operation")?;
        // Deliver before `?`: a rejected request can still have mutated the
        // kernel (a `Requester`-policy conflict aborts the requester, which
        // releases its claims and settles other sessions' waiters), so the
        // generated events must be drained on the error path too. Skipping
        // delivery here strands those waiters until the *next* kernel entry
        // — which never comes if this thread was the last one in.
        let outcome = self.shared.kernel.request_enrolled(id, loc, call);
        self.deliver_events();
        let outcome = match outcome? {
            RequestOutcome::Blocked { .. } => self.park_for_outcome(id),
            settled => settled,
        };
        outcome.into_result(id)
    }

    /// Claim the settled outcome for `txn`'s pending request if it has
    /// already been delivered, or register a fresh [`WaiterSlot`] to wait
    /// on.
    ///
    /// This is the database's **single rendezvous seam**: every waiting
    /// path — per-call exec, grouped submission, `settle_pending`, their
    /// async counterparts, and every shard-originated wakeup — funnels
    /// through this one claim/register pair. The sync front-end parks the
    /// OS thread on the returned slot ([`Database::park_for_outcome`]);
    /// the async front-end polls it ([`WaiterSlot::poll_outcome`]).
    pub(crate) fn claim_or_wait(&self, txn: TxnId) -> Result<RequestOutcome, Arc<WaiterSlot>> {
        // The claim half of the rendezvous: a fill by a concurrent
        // deliverer may land just before or just after this window.
        chaos::reach(ChaosPoint::RendezvousClaim, Some(txn));
        let mut sessions = self.shared.sessions.lock();
        // The request may already have been settled by side effects of
        // the submission itself (the kernel retries blocked requests
        // to fixpoint before returning) or by another thread's
        // termination racing this claim.
        match sessions.delivered.remove(&txn) {
            Some(outcome) => {
                self.shared
                    .delivered_count
                    .fetch_sub(1, std::sync::atomic::Ordering::Release);
                Ok(outcome)
            }
            None => {
                // Wait on a private slot: whichever thread later drains
                // the kernel event that settles this transaction fills
                // the slot and wakes only this session. One slot per
                // transaction — the sync session is `!Sync` and the async
                // session's `waiting` flag rejects a second awaiter, so an
                // existing entry here would be a front-end bug that
                // orphans the first waiter.
                let slot = Arc::new(WaiterSlot::default());
                let previous = sessions.waiters.insert(txn, slot.clone());
                debug_assert!(
                    previous.is_none(),
                    "second waiter slot registered for {txn}"
                );
                Err(slot)
            }
        }
    }

    /// Unregister an async waiter that is being cancelled (its future was
    /// dropped before the outcome arrived). Returns the outcome if the
    /// delivery raced the cancellation and already filled the slot.
    pub(crate) fn cancel_wait(
        &self,
        txn: TxnId,
        slot: &Arc<WaiterSlot>,
    ) -> Option<RequestOutcome> {
        {
            let mut sessions = self.shared.sessions.lock();
            if let Some(registered) = sessions.waiters.get(&txn) {
                // Only remove *our* slot: the session may already have
                // registered a new waiter for a later submission.
                if Arc::ptr_eq(registered, slot) {
                    sessions.waiters.remove(&txn);
                    return None;
                }
            }
        }
        // The deliverer removed the slot from the map before the lock was
        // acquired; the outcome (if any) is inside the slot itself.
        slot.try_take()
    }

    /// Take the settled outcome for `txn`'s pending request, parking the
    /// calling OS thread if it has not settled yet (the sync half of the
    /// rendezvous seam; [`crate::aio`] awaits the same slot instead).
    fn park_for_outcome(&self, txn: TxnId) -> RequestOutcome {
        match self.claim_or_wait(txn) {
            Ok(outcome) => outcome,
            Err(slot) => slot.await_outcome(),
        }
    }

    pub(crate) fn try_exec_call_raw(
        &self,
        txn: &SessionCore,
        loc: ObjectLoc,
        call: OpCall,
    ) -> Result<RequestOutcome, CoreError> {
        let id = txn.id;
        self.check_loc(loc)?;
        self.admit_submission(txn, "request an operation")?;
        if let Some(result) = self.snapshot_read_raw(txn, loc, &call)? {
            return Ok(RequestOutcome::Executed {
                result,
                commit_deps: Vec::new(),
            });
        }
        self.ensure_session_enrolled(txn, loc.shard, "request an operation")?;
        // Deliver before `?` (see `exec_call_raw`): even a rejected request
        // may have generated settlement events for other sessions.
        let outcome = self.shared.kernel.request_enrolled(id, loc, call);
        self.deliver_events();
        let outcome = outcome?;
        if outcome.is_blocked() {
            txn.pending.set(true);
        }
        Ok(outcome)
    }

    fn settle_pending_raw(&self, txn: &SessionCore) -> Result<OpResult, CoreError> {
        let id = txn.id;
        if !txn.pending.get() {
            return Err(CoreError::NoPendingOperation(id));
        }
        // There IS an operation in flight, so an outcome is guaranteed to
        // be delivered (the thread that settles the request always runs
        // `deliver_events` after publishing): parking cannot be lost, and
        // no kernel-state check is needed — querying it here would race
        // the delivery (settled-but-not-yet-delivered would look like
        // "nothing pending").
        let outcome = match self.shared.take_delivered(id) {
            Some(outcome) => outcome,
            None => self.park_for_outcome(id),
        };
        txn.pending.set(false);
        outcome.into_result(id)
    }

    /// One kernel pass over a grouped submission's remaining calls:
    /// admit, enroll, classify in one index walk per touched shard (see
    /// [`ShardedKernel::request_batch_located`] and
    /// [`crate::SchedulerKernel::request_batch`]).
    ///
    /// On [`BatchPass::MustWait`] the blocking terminator is the
    /// transaction's pending request inside the kernel; the caller waits
    /// for it to settle (parking or awaiting) and feeds the outcome back
    /// through [`Database::batch_resume`]. This split is what lets the
    /// sync and async batch loops share every line of batch logic and
    /// differ only in *how* they sleep.
    pub(crate) fn batch_pass(
        &self,
        txn: &SessionCore,
        run: &mut BatchRun,
    ) -> Result<BatchPass, CoreError> {
        let id = txn.id;
        self.admit_submission(txn, "submit a batch")?;
        // Enrollment through the session cache: steady state takes no
        // coordinator lock, exactly like the per-call exec path.
        for loc in &run.locs {
            self.check_loc(*loc)?;
            self.ensure_session_enrolled(txn, loc.shard, "submit a batch")?;
        }
        if self.shared.declare_by_default {
            run.declare_from_calls();
        }
        let locs_kept = run.locs.clone();
        // Deliver before `?` (see `exec_call_raw`): a rejected batch may
        // still have settled other sessions' waiters.
        let outcome = match &run.declared {
            Some(declared) => self.shared.kernel.request_batch_declared_enrolled(
                id,
                std::mem::take(&mut run.calls),
                std::mem::take(&mut run.locs),
                declared,
            ),
            None => self.shared.kernel.request_batch_enrolled(
                id,
                std::mem::take(&mut run.calls),
                std::mem::take(&mut run.locs),
            ),
        };
        self.deliver_events();
        let outcome = outcome?;
        run.results.extend(outcome.executed);
        match outcome.stopped {
            None => Ok(BatchPass::Complete),
            Some(BatchStop::Aborted { reason, .. }) => {
                Err(CoreError::Aborted { txn: id, reason })
            }
            Some(BatchStop::Blocked { rest, index, .. }) => {
                // The unprocessed suffix keeps its original locations
                // (`rest` is always a suffix of the submitted batch).
                run.locs = locs_kept[index + 1..].to_vec();
                debug_assert_eq!(run.locs.len(), rest.len());
                run.calls = rest;
                Ok(BatchPass::MustWait)
            }
        }
    }

    /// Feed the settled outcome of a batch's blocking terminator back into
    /// the run. Returns `Ok(true)` when the batch is complete, `Ok(false)`
    /// when the remaining suffix needs another [`Database::batch_pass`].
    pub(crate) fn batch_resume(
        &self,
        txn: &SessionCore,
        run: &mut BatchRun,
        outcome: RequestOutcome,
    ) -> Result<bool, CoreError> {
        match outcome {
            RequestOutcome::Executed { result, .. } => {
                run.results.push(result);
                Ok(run.calls.is_empty())
            }
            RequestOutcome::Aborted { reason } => {
                Err(CoreError::Aborted { txn: txn.id, reason })
            }
            RequestOutcome::Blocked { .. } => {
                unreachable!("blocked outcomes are never delivered")
            }
        }
    }

    /// Submit a group of calls, blocking as often as needed until every
    /// call has executed (or the transaction aborts).
    fn submit_batch_raw(
        &self,
        txn: &SessionCore,
        group: BatchCalls,
    ) -> Result<Vec<OpResult>, CoreError> {
        let mut run = BatchRun::new(group);
        loop {
            match self.batch_pass(txn, &mut run)? {
                BatchPass::Complete => return Ok(run.into_results()),
                BatchPass::MustWait => {
                    let outcome = self.park_for_outcome(txn.id);
                    if self.batch_resume(txn, &mut run, outcome)? {
                        return Ok(run.into_results());
                    }
                }
            }
        }
    }

    pub(crate) fn commit_raw(&self, txn: TxnId) -> Result<CommitOutcome, CoreError> {
        let _ = self.shared.take_delivered(txn);
        // Deliver before `?`: a commit whose vote aborts the *committer*
        // (`Err(Aborted)`) has released the transaction's claims, and the
        // resulting grants to blocked sessions are sitting in the event
        // queue. They must be drained even though commit itself failed —
        // found by the DST harness as a cross-session liveness hang when
        // the aborted committer's session was the last thread to enter the
        // kernel (seed 133's endless `poll T19` tail).
        let outcome = self.shared.kernel.commit(txn);
        self.deliver_events();
        Ok(outcome?)
    }

    pub(crate) fn abort_raw(&self, txn: TxnId) -> Result<(), CoreError> {
        let _ = self.shared.take_delivered(txn);
        let result = self.shared.kernel.abort(txn);
        self.deliver_events();
        result
    }

    fn deliver_events(&self) {
        let events = self.shared.kernel.drain_events();
        if events.is_empty() {
            return;
        }
        // A drained non-empty batch is owned exclusively by this thread;
        // between here and the sessions lock another session can submit,
        // terminate, or cancel. A chaos hook may also permute the delivery
        // order across transactions (per-transaction order preserved) —
        // cross-transaction delivery order is unordered by contract.
        chaos::reach(ChaosPoint::DeliverDrain, None);
        // `chaos::active()` is a compile-time `false` without the feature,
        // so the reordering branch (and its `Vec<TxnId>`) is statically
        // dead in release builds.
        let events = if chaos::active() {
            let txns: Vec<TxnId> = events.iter().map(|e| e.txn()).collect();
            match chaos::reorder_events(&txns) {
                Some(perm) => {
                    debug_assert_eq!(perm.len(), events.len());
                    let mut slots: Vec<Option<KernelEvent>> =
                        events.into_iter().map(Some).collect();
                    perm.into_iter()
                        .map(|i| slots[i].take().expect("permutation visits each index once"))
                        .collect()
                }
                None => events,
            }
        } else {
            events
        };
        // Claim the waiter slots under the sessions lock, but *fill* them
        // (which signals condvars and runs arbitrary `Waker::wake` code of
        // whatever executor the async front-end sits on) only after the
        // lock is released — a waker that takes its own scheduling lock
        // must never be invoked under the database-wide sessions mutex,
        // or an executor polling into `claim_or_wait` on another thread
        // deadlocks ABBA-style. A claimed slot is owned exclusively by
        // this delivery (a cancelled waiter that misses the map falls
        // back to `WaiterSlot::try_take` and discards), so the deferred
        // fill loses no outcome.
        let mut fills: Vec<(TxnId, Arc<WaiterSlot>, RequestOutcome)> = Vec::new();
        {
            let mut sessions = self.shared.sessions.lock();
            for event in events {
                let (txn, outcome) = match event {
                    KernelEvent::Unblocked { txn, outcome } => (txn, outcome),
                    // The transaction may be parked in an `exec*` call;
                    // deliver the abort so it can return an error.
                    KernelEvent::Aborted { txn, reason } => {
                        (txn, RequestOutcome::Aborted { reason })
                    }
                    KernelEvent::Committed { .. } => {
                        // Cascaded commits are observable through
                        // `outcome_of`.
                        continue;
                    }
                };
                match sessions.waiters.remove(&txn) {
                    Some(slot) => fills.push((txn, slot, outcome)),
                    None => {
                        if sessions.delivered.insert(txn, outcome).is_none() {
                            self.shared
                                .delivered_count
                                .fetch_add(1, std::sync::atomic::Ordering::Release);
                        }
                    }
                }
            }
        }
        // Exactly the waiters blocked on these transactions wake; every
        // other parked invocation stays asleep. The claimed-but-unfilled
        // window (and each gap between two fills) is where a cancellation
        // or a second delivery can interleave — both chaos points sit in
        // exactly those gaps.
        chaos::reach(ChaosPoint::DeliverClaimed, None);
        for (txn, slot, outcome) in fills {
            chaos::reach(ChaosPoint::DeliverFill, Some(txn));
            slot.fill(outcome);
        }
    }
}

/// A transaction session: the unit applications program against.
///
/// Obtained from [`Database::begin`] (or per attempt inside
/// [`Database::run`]). Operations block the calling thread while they
/// conflict with uncommitted operations of other transactions. The guard
/// **aborts the transaction on drop** unless [`Transaction::commit`] or
/// [`Transaction::abort`] consumed it first.
///
/// A `Transaction` is driven by one thread at a time: it is `Send` (it may
/// move between threads) but deliberately **not `Sync`** — two threads
/// blocking on the same session would race for its single wakeup slot, so
/// sharing `&Transaction` across threads is a compile error. Start one
/// session per thread instead; that is what the scheduler is for.
#[derive(Debug)]
pub struct Transaction {
    db: Database,
    /// The session bookkeeping shared with the async front-end (id,
    /// enrollment cache, pending-request flag); see [`SessionCore`].
    core: SessionCore,
    finished: bool,
    /// Suppresses `Sync` (a `Cell` is `Send + !Sync`) without affecting
    /// `Send`; see the type-level docs.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl Transaction {
    /// The raw transaction id (for diagnostics and the inspection APIs on
    /// [`Database`]).
    pub fn id(&self) -> TxnId {
        self.core.id()
    }

    /// The transaction's current scheduler state.
    pub fn state(&self) -> Option<TxnState> {
        self.db.txn_state(self.id())
    }

    /// The snapshot begin stamp for sessions opened through
    /// [`Database::begin_snapshot`], `None` for ordinary sessions.
    pub fn snapshot_stamp(&self) -> Option<u64> {
        self.core.snapshot()
    }

    /// Execute a typed operation, blocking while it conflicts with
    /// uncommitted operations of other transactions.
    pub fn exec<A: AdtSpec>(
        &self,
        object: &Handle<A>,
        op: A::Op,
    ) -> Result<OpResult, CoreError> {
        self.exec_call(object, op.to_call())
    }

    /// Execute an erased operation call, blocking while in conflict.
    ///
    /// Typed [`Handle`]s coerce to [`ObjectHandle`], so this accepts both.
    pub fn exec_call(&self, object: &ObjectHandle, call: OpCall) -> Result<OpResult, CoreError> {
        self.db.exec_call_raw(&self.core, object.loc(), call)
    }

    /// Submit an operation without blocking: returns the raw kernel
    /// outcome. On [`RequestOutcome::Blocked`] the request stays pending
    /// inside the kernel and its eventual outcome is claimed with
    /// [`Transaction::settle_pending`] (an unclaimed executed result is
    /// discarded by the next submission). Intended for tests and tools
    /// that want to observe the scheduler's decisions directly.
    pub fn try_exec_call(
        &self,
        object: &ObjectHandle,
        call: OpCall,
    ) -> Result<RequestOutcome, CoreError> {
        self.db.try_exec_call_raw(&self.core, object.loc(), call)
    }

    /// Claim the outcome of a previously blocked submission
    /// ([`Transaction::try_exec_call`] returning
    /// [`RequestOutcome::Blocked`]), parking the calling thread until it
    /// settles if it has not yet. Returns
    /// [`CoreError::NoPendingOperation`] when there is nothing in flight.
    pub fn settle_pending(&self) -> Result<OpResult, CoreError> {
        self.db.settle_pending_raw(&self.core)
    }

    /// Start building a grouped submission. See [`Batch`].
    pub fn batch(&self) -> Batch<'_> {
        Batch::new(self)
    }

    /// Commit the transaction (actual or pseudo-commit, per the protocol).
    /// Consumes the session; on success the guard will not abort on drop.
    ///
    /// A commit can fail while the transaction is still live — e.g. a
    /// [`Transaction::try_exec_call`] left a blocked request pending — and
    /// in that case the guard still aborts on drop, so the failed session
    /// cannot leak a live transaction that would block others forever.
    pub fn commit(mut self) -> Result<CommitOutcome, CoreError> {
        let result = self.db.commit_raw(self.id());
        self.finished = result.is_ok();
        result
    }

    /// Explicitly abort the transaction. Consumes the session.
    pub fn abort(mut self) -> Result<(), CoreError> {
        self.finished = true;
        self.db.abort_raw(self.id())
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.finished {
            // Best effort: the transaction may already be terminated (e.g.
            // aborted by the scheduler, or pseudo-committed, which by
            // construction cannot abort) — those errors are ignored.
            let _ = self.db.abort_raw(self.id());
        }
    }
}

/// The builder core shared by the sync ([`Batch`]) and async
/// ([`crate::aio::AsyncBatch`]) batch builders: the queued calls with
/// their shard locations, kept parallel. One implementation of the
/// call/location bookkeeping, so the two front-ends cannot diverge.
#[derive(Debug, Default)]
pub(crate) struct BatchCalls {
    calls: Vec<BatchCall>,
    /// Shard locations, parallel to `calls` (handles carry them, so a
    /// batch never consults the object directory).
    locs: Vec<ObjectLoc>,
    /// The declared access footprint, when the caller promised one (see
    /// [`sbcc_adt::AccessSet`]); `None` submits through the classified
    /// path.
    declared: Option<AccessSet<ObjectLoc>>,
}

impl BatchCalls {
    /// Append a call aimed at the handle's object.
    pub(crate) fn push(&mut self, object: &ObjectHandle, call: OpCall) {
        self.calls.push(BatchCall::new(object.id(), call));
        self.locs.push(object.loc());
    }

    /// Declare a read-only access to the handle's object.
    pub(crate) fn declare_read(&mut self, object: &ObjectHandle) {
        self.declared
            .get_or_insert_with(AccessSet::new)
            .declare_read(object.loc());
    }

    /// Declare a write access to the handle's object (covers reads too).
    pub(crate) fn declare_write(&mut self, object: &ObjectHandle) {
        self.declared
            .get_or_insert_with(AccessSet::new)
            .declare_write(object.loc());
    }

    /// Number of calls queued so far.
    pub(crate) fn len(&self) -> usize {
        self.calls.len()
    }

    /// `true` when no calls are queued.
    pub(crate) fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }
}

/// The mutable state of an in-flight grouped submission, shared by the
/// sync ([`Batch::submit`]) and async
/// ([`crate::aio::AsyncBatch::submit`]) batch loops: the remaining calls
/// with their shard locations, plus the results accumulated so far.
/// Driven by [`Database::batch_pass`] / [`Database::batch_resume`].
#[derive(Debug)]
pub(crate) struct BatchRun {
    calls: Vec<BatchCall>,
    /// Shard locations, parallel to `calls`.
    locs: Vec<ObjectLoc>,
    /// The declared footprint, carried across every pass of the run (a
    /// resumed suffix re-submits under the same declaration).
    declared: Option<AccessSet<ObjectLoc>>,
    results: Vec<OpResult>,
}

impl BatchRun {
    pub(crate) fn new(group: BatchCalls) -> Self {
        debug_assert_eq!(group.calls.len(), group.locs.len(), "one location per call");
        let capacity = group.calls.len();
        BatchRun {
            calls: group.calls,
            locs: group.locs,
            declared: group.declared,
            results: Vec::with_capacity(capacity),
        }
    }

    /// With no explicit declaration, derive one from the run's own call
    /// list — every touched object declared written, which trivially
    /// covers every call. Used by the `SBCC_DECLARED=1` leg to route
    /// existing workloads through group admission unchanged.
    pub(crate) fn declare_from_calls(&mut self) {
        if self.declared.is_none() {
            let mut derived = AccessSet::new();
            for loc in &self.locs {
                derived.declare_write(*loc);
            }
            self.declared = Some(derived);
        }
    }

    /// The accumulated results (one per submitted call, in order) of a
    /// completed run.
    pub(crate) fn into_results(self) -> Vec<OpResult> {
        self.results
    }
}

/// What a [`Database::batch_pass`] left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BatchPass {
    /// Every remaining call executed; the run is complete.
    Complete,
    /// A call blocked and is now the transaction's pending request; wait
    /// for it to settle, then feed the outcome to
    /// [`Database::batch_resume`].
    MustWait,
}

/// Builder for a grouped submission: several operation calls — often
/// multiple operations on the same object — admitted by the kernel in
/// **one classification pass under one lock acquisition** instead of one
/// kernel round-trip per call.
///
/// Calls execute in the order they were added. Admission is *partial* in
/// exactly the way per-call submission is: a call that conflicts parks the
/// session until the conflict clears, the already-executed prefix stays
/// executed, and [`Batch::submit`] resumes the remainder afterwards — the
/// returned results always cover every call, in order, unless the
/// transaction is aborted (see
/// [`crate::BatchOutcome`] for the precise kernel-level
/// semantics).
#[derive(Debug)]
pub struct Batch<'t> {
    txn: &'t Transaction,
    group: BatchCalls,
}

impl Batch<'_> {
    pub(crate) fn new(txn: &Transaction) -> Batch<'_> {
        Batch {
            txn,
            group: BatchCalls::default(),
        }
    }

    /// Append a typed operation (chaining form).
    pub fn op<A: AdtSpec>(mut self, object: &Handle<A>, op: A::Op) -> Self {
        self.add_op(object, op);
        self
    }

    /// Append an erased call (chaining form).
    pub fn call(mut self, object: &ObjectHandle, call: OpCall) -> Self {
        self.add_call(object, call);
        self
    }

    /// Append a typed operation (mutating form, for loops).
    pub fn add_op<A: AdtSpec>(&mut self, object: &Handle<A>, op: A::Op) {
        self.add_call(object, op.to_call());
    }

    /// Append an erased call (mutating form, for loops).
    pub fn add_call(&mut self, object: &ObjectHandle, call: OpCall) {
        self.group.push(object, call);
    }

    /// Declare that this batch only *reads* `object` (chaining form).
    ///
    /// Declaring any access opts the batch into Block-STM-style group
    /// admission: when the whole declared footprint is untouched by other
    /// live transactions, the kernel admits every call in a single
    /// footprint scan with zero per-op classification. The declaration is
    /// a promise, never a proof — a call outside it is detected at
    /// admission and the batch escalates to the classifier (or the
    /// transaction aborts with
    /// [`crate::AbortReason::UndeclaredAccess`], per
    /// [`crate::UndeclaredPolicy`]). A mutating call on a read-declared
    /// object counts as outside the declaration.
    pub fn declare_read(mut self, object: &ObjectHandle) -> Self {
        self.add_declare_read(object);
        self
    }

    /// Declare that this batch may *write* `object` (chaining form; a
    /// write declaration covers reads too). See [`Batch::declare_read`]
    /// for the group-admission contract.
    pub fn declare_write(mut self, object: &ObjectHandle) -> Self {
        self.add_declare_write(object);
        self
    }

    /// Declare a read access (mutating form, for loops).
    pub fn add_declare_read(&mut self, object: &ObjectHandle) {
        self.group.declare_read(object);
    }

    /// Declare a write access (mutating form, for loops).
    pub fn add_declare_write(&mut self, object: &ObjectHandle) {
        self.group.declare_write(object);
    }

    /// Number of calls queued so far.
    pub fn len(&self) -> usize {
        self.group.len()
    }

    /// `true` when no calls are queued.
    pub fn is_empty(&self) -> bool {
        self.group.is_empty()
    }

    /// Submit the group, blocking until **every** call has executed.
    /// Returns one result per call, in submission order, or the abort
    /// error if the scheduler aborts the transaction along the way.
    pub fn submit(self) -> Result<Vec<OpResult>, CoreError> {
        if self.group.is_empty() {
            return Ok(Vec::new());
        }
        self.txn.db.submit_batch_raw(&self.txn.core, self.group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ConflictPolicy;
    use sbcc_adt::{Stack, StackOp, TableObject, TableOp, Value};
    use std::time::Duration;

    fn db() -> Database {
        Database::new(SchedulerConfig::default())
    }

    #[test]
    fn register_and_handle_accessors() {
        let db = db();
        let h = db.register("jobs", Stack::new());
        assert_eq!(h.name(), "jobs");
        assert_eq!(h.id(), ObjectId(0));
        assert_eq!(h.erased().name(), "jobs");
        assert_eq!(h.clone(), h, "typed handles are cheap clones");
        assert_eq!(h.clone().into_erased().id(), ObjectId(0));
        assert!(db.try_register("jobs", Stack::new()).is_err());
        let h2 = db
            .register_object("jobs2", Box::new(sbcc_adt::AdtObject::new(Stack::new())))
            .unwrap();
        assert_eq!(h2.id(), ObjectId(1));
        assert_eq!(h2.clone(), h2);
        assert!(format!("{db:?}").contains("Database"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn register_panics_on_duplicate() {
        let db = db();
        db.register("x", Stack::new());
        db.register("x", Stack::new());
    }

    #[test]
    fn pseudo_commit_then_cascaded_commit() {
        let db = db();
        let s = db.register("jobs", Stack::new());
        let t1 = db.begin();
        let t2 = db.begin();
        let (id1, id2) = (t1.id(), t2.id());
        t1.exec(&s, StackOp::Push(Value::Int(4))).unwrap();
        t2.exec(&s, StackOp::Push(Value::Int(2))).unwrap();
        assert_eq!(t2.state(), Some(TxnState::Active));

        let o2 = t2.commit().unwrap();
        assert!(o2.is_pseudo_commit());
        assert_eq!(db.txn_state(id2), Some(TxnState::PseudoCommitted));
        assert_eq!(db.outcome_of(id2), Some(o2));

        let o1 = t1.commit().unwrap();
        assert!(o1.is_full_commit());
        assert_eq!(db.outcome_of(id2), Some(CommitOutcome::Committed));
        assert_eq!(db.outcome_of(id1), Some(CommitOutcome::Committed));

        db.verify_serializable().unwrap();
        db.verify_commit_dependencies().unwrap();
        db.check_invariants().unwrap();
        let stats = db.stats();
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.pseudo_commits, 1);
        assert!(db.cycle_checks() >= 1);
    }

    #[test]
    fn blocked_exec_wakes_up_when_holder_commits() {
        let db = db();
        let s = db.register("jobs", Stack::new());
        let t1 = db.begin();
        t1.exec(&s, StackOp::Push(Value::Int(7))).unwrap();

        let db2 = db.clone();
        let s2 = s.clone();
        let handle = std::thread::spawn(move || {
            let t2 = db2.begin();
            // pop conflicts with the uncommitted push: this blocks until T1
            // commits, then returns the pushed value.
            let popped = t2.exec(&s2, StackOp::Pop).unwrap();
            t2.commit().unwrap();
            popped
        });

        // Give the other thread time to block, then commit.
        std::thread::sleep(Duration::from_millis(50));
        t1.commit().unwrap();
        let popped = handle.join().expect("worker thread");
        assert_eq!(popped, OpResult::Value(Value::Int(7)));
        db.verify_serializable().unwrap();
        let stats = db.stats();
        assert_eq!(stats.blocks, 1);
        assert_eq!(stats.unblocks, 1);
    }

    #[test]
    fn abort_releases_waiters_without_cascading_aborts() {
        let db = db();
        let table = db.register("accounts", TableObject::new());
        let t1 = db.begin();
        // T1 inserts key 1 but will abort.
        t1.exec(&table, TableOp::Insert(Value::Int(1), Value::Int(100)))
            .unwrap();

        // T2 inserts a *different* key: inserts with distinct keys commute
        // (Yes-DP), so T2 neither blocks behind T1 nor acquires a commit
        // dependency on it, and its commit is a full commit even while T1
        // is still live. The point of the scenario: T1's subsequent abort
        // must not touch T2 in any way (no cascading aborts — exactly what
        // the protocol's recoverability discipline guarantees) and must
        // leave the committed state containing T2's key only.
        let t2 = db.begin();
        t2.exec(&table, TableOp::Insert(Value::Int(2), Value::Int(200)))
            .unwrap();
        assert!(t2.commit().unwrap().is_full_commit());

        let id1 = t1.id();
        t1.abort().unwrap();
        assert_eq!(db.txn_state(id1), Some(TxnState::Aborted));
        db.verify_serializable().unwrap();

        // The committed state contains key 2 only.
        let t3 = db.begin();
        let r = t3.exec(&table, TableOp::Lookup(Value::Int(2))).unwrap();
        assert_eq!(r, OpResult::Value(Value::Int(200)));
        let r = t3.exec(&table, TableOp::Lookup(Value::Int(1))).unwrap();
        assert_eq!(r, OpResult::Null);
        t3.commit().unwrap();
    }

    #[test]
    fn exec_after_scheduler_abort_returns_error() {
        let db = Database::new(
            SchedulerConfig::default().with_policy(ConflictPolicy::CommutativityOnly),
        );
        let s = db.register("s", Stack::new());
        let t1 = db.begin();
        let t2 = db.begin();
        t1.exec(&s, StackOp::Push(Value::Int(1))).unwrap();
        // Under commutativity-only, T2's push conflicts and blocks; force a
        // deadlock by making T1 also wait on T2 through a second object.
        let s2 = db.register("s2", Stack::new());
        t2.exec(&s2, StackOp::Push(Value::Int(2))).unwrap();

        let s_clone = s.clone();
        let blocker =
            std::thread::spawn(move || {
                let r = t2.exec(&s_clone, StackOp::Push(Value::Int(3)));
                (t2, r)
            });
        std::thread::sleep(Duration::from_millis(50));
        // T1 now requests a push on s2 -> wait-for cycle -> T1 is aborted.
        let result = t1.exec(&s2, StackOp::Push(Value::Int(4)));
        assert!(matches!(result, Err(CoreError::Aborted { .. })));
        // T2 unblocks once T1's abort removes its operations.
        let (t2, blocked_result) = blocker.join().unwrap();
        assert!(blocked_result.is_ok());
        t2.commit().unwrap();
        drop(t1); // already aborted; the guard's abort attempt is a no-op
        db.verify_serializable().unwrap();
    }

    #[test]
    fn dropping_a_session_aborts_it() {
        let db = db();
        let s = db.register("s", Stack::new());
        let id = {
            let t = db.begin();
            t.exec(&s, StackOp::Push(Value::Int(1))).unwrap();
            t.id()
            // dropped here without commit
        };
        assert_eq!(db.txn_state(id), Some(TxnState::Aborted));
        assert_eq!(db.stats().aborts_explicit, 1);
        // The dropped transaction's push is gone.
        let t = db.begin();
        assert_eq!(t.exec(&s, StackOp::Top).unwrap(), OpResult::Null);
        t.commit().unwrap();
        db.verify_serializable().unwrap();
    }

    #[test]
    fn run_commits_on_success_and_retries_scheduler_aborts() {
        let db = Database::new(
            SchedulerConfig::default().with_policy(ConflictPolicy::CommutativityOnly),
        );
        let a = db.register("a", Stack::new());
        let b = db.register("b", Stack::new());

        // Plain success path.
        let r = db
            .run(|txn| txn.exec(&a, StackOp::Push(Value::Int(1))))
            .unwrap();
        assert_eq!(r, OpResult::Ok);
        assert_eq!(db.stats().commits, 1);

        // Deadlock path: the holder session owns `b` and (from a worker
        // thread) blocks on `a` once the closure's first attempt holds it;
        // the attempt then requests `b`, closes the cycle, and is aborted
        // as the requester. The retry succeeds after the holder commits.
        let holder = db.begin();
        holder.exec(&b, StackOp::Push(Value::Int(9))).unwrap();
        let mut holder = Some(holder);
        let mut blocker = None;

        let mut attempts = 0;
        let r = db.run(|txn| {
            attempts += 1;
            txn.exec(&a, StackOp::Push(Value::Int(2)))?;
            if attempts == 1 {
                // Only now — with `a` held by this attempt — let the holder
                // block on it, and give it time to do so.
                let holder = holder.take().expect("first attempt only");
                let a2 = a.clone();
                blocker = Some(std::thread::spawn(move || {
                    holder.exec(&a2, StackOp::Push(Value::Int(8))).unwrap();
                    holder.commit().unwrap();
                }));
                std::thread::sleep(Duration::from_millis(50));
            }
            txn.exec(&b, StackOp::Push(Value::Int(3)))
        });
        blocker.take().expect("spawned").join().unwrap();
        assert_eq!(r.unwrap(), OpResult::Ok);
        assert!(attempts >= 2, "first attempt must have been retried");
        assert!(db.stats().scheduler_aborts() >= 1);
        db.verify_serializable().unwrap();
    }

    #[test]
    fn run_retry_budget_surfaces_retries_exhausted() {
        // Every attempt's transaction is aborted out from under the runner
        // (simulating a scheduler that victimizes it each time): with
        // `max_retries = 2` the runner gives up on the third attempt and
        // reports the budget, not the underlying per-attempt error.
        let db = Database::with_config(DatabaseConfig::new(
            SchedulerConfig::default().with_max_retries(2),
        ));
        let s = db.register("c", Stack::new());
        let mut attempts = 0usize;
        let err = db
            .run(|txn| {
                attempts += 1;
                txn.exec(&s, StackOp::Push(Value::Int(1)))?;
                let id = txn.id();
                db.with_sharded_kernel(|k| k.abort(id)).unwrap();
                Ok(())
            })
            .unwrap_err();
        match err {
            CoreError::RetriesExhausted { attempts: a, .. } => {
                assert_eq!(a, 3, "budget of 2 retries = 3 attempts");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(attempts, 3);
        // A zero budget fails on the very first retryable error.
        let db0 = Database::with_config(DatabaseConfig::new(
            SchedulerConfig::default().with_max_retries(0),
        ));
        let s0 = db0.register("c", Stack::new());
        let err = db0
            .run(|txn| {
                txn.exec(&s0, StackOp::Push(Value::Int(1)))?;
                let id = txn.id();
                db0.with_sharded_kernel(|k| k.abort(id)).unwrap();
                Ok(())
            })
            .unwrap_err();
        assert!(
            matches!(err, CoreError::RetriesExhausted { attempts: 1, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn run_propagates_non_scheduler_errors() {
        let db = db();
        let s = db.register("s", Stack::new());
        let mut calls = 0;
        let err = db.run(|_txn| -> Result<(), CoreError> {
            calls += 1;
            Err(CoreError::UnknownObject("nope".into()))
        });
        assert!(matches!(err, Err(CoreError::UnknownObject(_))));
        assert_eq!(calls, 1, "non-scheduler errors are not retried");
        // The failed attempt's transaction was aborted by its guard.
        assert_eq!(db.stats().aborts_explicit, 1);
        let t = db.begin();
        assert_eq!(t.exec(&s, StackOp::Top).unwrap(), OpResult::Null);
        t.commit().unwrap();
    }

    #[test]
    fn batch_executes_all_calls_under_one_submission() {
        let db = db();
        let s = db.register("s", Stack::new());
        let t = db.begin();
        let results = t
            .batch()
            .op(&s, StackOp::Push(Value::Int(1)))
            .op(&s, StackOp::Push(Value::Int(2)))
            .op(&s, StackOp::Top)
            .submit()
            .unwrap();
        assert_eq!(
            results,
            vec![
                OpResult::Ok,
                OpResult::Ok,
                OpResult::Value(Value::Int(2))
            ]
        );
        t.commit().unwrap();
        let stats = db.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batched_calls, 3);
        assert_eq!(stats.requests, 3, "each batched call counts as a request");
        db.verify_serializable().unwrap();
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let db = db();
        let s = db.register("s", Stack::new());
        let t = db.begin();
        let b = t.batch();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.submit().unwrap(), vec![]);
        assert_eq!(db.stats().batches, 0, "empty batches never reach the kernel");
        let _ = t.exec(&s, StackOp::Top).unwrap();
        t.commit().unwrap();
    }

    #[test]
    fn blocked_batch_resumes_and_returns_every_result() {
        let db = db();
        let s = db.register("s", Stack::new());
        let c = db.register("c", sbcc_adt::Counter::new());
        let t1 = db.begin();
        t1.exec(&s, StackOp::Push(Value::Int(7))).unwrap();

        let db2 = db.clone();
        let (s2, c2) = (s.clone(), c.clone());
        let worker = std::thread::spawn(move || {
            let t2 = db2.begin();
            // Increment commutes (executes immediately); the pop conflicts
            // with T1's uncommitted push and parks the batch; the final
            // increment is resumed after T1 commits.
            let results = t2
                .batch()
                .op(&c2, sbcc_adt::CounterOp::Increment(1))
                .op(&s2, StackOp::Pop)
                .op(&c2, sbcc_adt::CounterOp::Increment(1))
                .submit()
                .unwrap();
            t2.commit().unwrap();
            results
        });

        std::thread::sleep(Duration::from_millis(50));
        t1.commit().unwrap();
        let results = worker.join().expect("worker thread");
        assert_eq!(
            results,
            vec![
                OpResult::Ok,
                OpResult::Value(Value::Int(7)),
                OpResult::Ok
            ]
        );
        assert_eq!(db.stats().blocks, 1);
        assert_eq!(db.stats().unblocks, 1);
        db.verify_serializable().unwrap();
    }

    #[test]
    fn delivered_outcome_is_claimed_by_settle_pending() {
        // The `delivered` map path: a request settles while *no* thread is
        // parked waiting for it, and the outcome is picked up by a later
        // blocking call.
        let db = db();
        let s = db.register("s", Stack::new());
        let t1 = db.begin();
        t1.exec(&s, StackOp::Push(Value::Int(7))).unwrap();

        let t2 = db.begin();
        // Non-blocking submission: the pop conflicts and stays pending
        // inside the kernel; this thread does NOT park.
        let outcome = t2.try_exec_call(&s, StackOp::Pop.to_call()).unwrap();
        assert!(outcome.is_blocked());

        // The holder commits on this same thread: the retried pop executes
        // and its outcome is delivered with no waiter registered, so it
        // lands in the `delivered` map.
        t1.commit().unwrap();

        // ... and is claimed by the later blocking call.
        assert_eq!(
            t2.settle_pending().unwrap(),
            OpResult::Value(Value::Int(7))
        );
        t2.commit().unwrap();
        db.verify_serializable().unwrap();
    }

    #[test]
    fn settle_pending_parks_until_the_outcome_arrives() {
        // Same scenario, but the waiter parks *before* the holder commits:
        // settle_pending must block and be woken by the delivery.
        let db = db();
        let s = db.register("s", Stack::new());
        let t1 = db.begin();
        t1.exec(&s, StackOp::Push(Value::Int(3))).unwrap();

        let t2 = db.begin();
        assert!(t2
            .try_exec_call(&s, StackOp::Pop.to_call())
            .unwrap()
            .is_blocked());

        let worker = std::thread::spawn(move || {
            let popped = t2.settle_pending().unwrap();
            t2.commit().unwrap();
            popped
        });
        std::thread::sleep(Duration::from_millis(50));
        t1.commit().unwrap();
        assert_eq!(
            worker.join().expect("worker"),
            OpResult::Value(Value::Int(3))
        );
        db.verify_serializable().unwrap();
    }

    #[test]
    fn settle_pending_without_a_pending_operation_errors() {
        let db = db();
        let s = db.register("s", Stack::new());
        let t = db.begin();
        assert!(matches!(
            t.settle_pending(),
            Err(CoreError::NoPendingOperation(_))
        ));
        t.exec(&s, StackOp::Push(Value::Int(1))).unwrap();
        assert!(matches!(
            t.settle_pending(),
            Err(CoreError::NoPendingOperation(_)),
        ), "an executed operation leaves nothing pending");
        t.commit().unwrap();
    }

    #[test]
    fn blocked_session_cannot_submit_elsewhere() {
        // The single-kernel contract: a transaction with a pending blocked
        // request rejects every further submission with
        // InvalidState{Blocked}. Across shards only the shard holding the
        // pending request knows, so the session layer enforces it — this
        // must behave identically at every shard count (exercised under
        // both SBCC_SHARDS CI configurations, and pinned here at 4 shards
        // with objects spread wide).
        let db = Database::with_config(
            crate::shard::DatabaseConfig::new(SchedulerConfig::default()).with_shards(4),
        );
        let handles: Vec<_> = (0..8).map(|i| db.register(format!("s{i}"), Stack::new())).collect();
        let t1 = db.begin();
        t1.exec(&handles[0], StackOp::Push(Value::Int(7))).unwrap();

        let t2 = db.begin();
        assert!(t2
            .try_exec_call(&handles[0], StackOp::Pop.to_call())
            .unwrap()
            .is_blocked());
        // Every other object — wherever it lives — must reject t2 now.
        for h in &handles[1..] {
            assert!(
                matches!(
                    t2.exec_call(h, StackOp::Push(Value::Int(1)).to_call()),
                    Err(CoreError::InvalidState {
                        state: TxnState::Blocked,
                        ..
                    })
                ),
                "blocked session must not execute on {}",
                h.name()
            );
        }
        assert!(matches!(
            t2.batch().op(&handles[1], StackOp::Top).submit(),
            Err(CoreError::InvalidState {
                state: TxnState::Blocked,
                ..
            })
        ));
        // Once the conflict clears, the pending pop settles and the
        // session is usable again.
        t1.commit().unwrap();
        assert_eq!(t2.settle_pending().unwrap(), OpResult::Value(Value::Int(7)));
        t2.exec(&handles[3], StackOp::Push(Value::Int(2))).unwrap();
        t2.commit().unwrap();
        db.verify_serializable().unwrap();
        db.check_invariants().unwrap();
    }

    #[test]
    fn stale_delivered_result_is_discarded_by_the_next_submission() {
        let db = db();
        let s = db.register("s", Stack::new());
        let t1 = db.begin();
        t1.exec(&s, StackOp::Push(Value::Int(7))).unwrap();

        let t2 = db.begin();
        assert!(t2
            .try_exec_call(&s, StackOp::Pop.to_call())
            .unwrap()
            .is_blocked());
        t1.commit().unwrap(); // settles T2's pop into the delivered map

        // T2 never claims the pop's result and submits something new: the
        // stale result must not be mistaken for the new call's outcome.
        assert_eq!(
            t2.exec(&s, StackOp::Push(Value::Int(9))).unwrap(),
            OpResult::Ok
        );
        t2.commit().unwrap();
        db.verify_serializable().unwrap();
    }

    #[test]
    fn failed_commit_still_aborts_the_session_on_drop() {
        let db = db();
        let s = db.register("s", Stack::new());
        let t1 = db.begin();
        t1.exec(&s, StackOp::Push(Value::Int(1))).unwrap();
        let t2 = db.begin();
        let id2 = t2.id();
        // A non-blocking conflicting submission leaves T2 blocked inside
        // the kernel...
        assert!(t2
            .try_exec_call(&s, StackOp::Pop.to_call())
            .unwrap()
            .is_blocked());
        // ...so the commit is rejected — and the consumed guard must still
        // abort the transaction instead of leaking it in the blocked state
        // (where it would stall every future conflicting session).
        assert!(matches!(
            t2.commit(),
            Err(CoreError::InvalidState {
                state: TxnState::Blocked,
                ..
            })
        ));
        assert_eq!(db.txn_state(id2), Some(TxnState::Aborted));
        t1.commit().unwrap();
        db.verify_serializable().unwrap();
        db.check_invariants().unwrap();
    }

    #[test]
    fn with_sharded_kernel_exposes_the_kernel() {
        let db = db();
        db.register("s", Stack::new());
        let count = db.with_sharded_kernel(|k| k.object_count());
        assert_eq!(count, 1);
        assert!(db.shard_count() >= 1);
    }

    #[test]
    fn abort_reason_is_surfaced_after_unparked_abort() {
        // A transaction aborted while its outcome sits in the delivered map
        // reports the abort on its next submission.
        let db = Database::new(
            SchedulerConfig::default().with_policy(ConflictPolicy::CommutativityOnly),
        );
        let s = db.register("s", Stack::new());
        let t1 = db.begin();
        t1.exec(&s, StackOp::Push(Value::Int(1))).unwrap();
        let t2 = db.begin();
        assert!(t2
            .try_exec_call(&s, StackOp::Push(Value::Int(2)).to_call())
            .unwrap()
            .is_blocked());
        // T1 aborts; T2's pending push is retried and executes.
        t1.abort().unwrap();
        assert_eq!(t2.settle_pending().unwrap(), OpResult::Ok);
        t2.commit().unwrap();
        assert_eq!(db.stats().aborts_explicit, 1);
    }

    #[test]
    fn stale_delivered_abort_is_reported_by_the_next_submission() {
        let db = Database::new(
            SchedulerConfig::default().with_policy(ConflictPolicy::CommutativityOnly),
        );
        let s = db.register("s", Stack::new());
        let s2 = db.register("s2", Stack::new());
        let t1 = db.begin();
        let t2 = db.begin();
        t1.exec(&s, StackOp::Push(Value::Int(1))).unwrap();
        t2.exec(&s2, StackOp::Push(Value::Int(2))).unwrap();
        // T2 parks a conflicting push inside the kernel (non-blocking).
        assert!(t2
            .try_exec_call(&s, StackOp::Push(Value::Int(3)).to_call())
            .unwrap()
            .is_blocked());
        // T1 requests a push on s2 -> wait-for cycle -> T1 (the requester)
        // is aborted; T2's pending push then executes and is delivered with
        // no waiter parked.
        assert!(t1.exec(&s2, StackOp::Push(Value::Int(4))).is_err());
        drop(t1);
        assert_eq!(t2.settle_pending().unwrap(), OpResult::Ok);
        t2.commit().unwrap();
        db.verify_serializable().unwrap();
    }
}
