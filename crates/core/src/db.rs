//! A thread-safe, blocking front-end over the [`SchedulerKernel`].
//!
//! The kernel itself is a synchronous state machine: a blocked request
//! returns [`RequestOutcome::Blocked`] and is retried internally when a
//! conflicting transaction terminates. [`Database`] turns that into the
//! interface applications expect — [`Database::invoke`] simply *blocks the
//! calling thread* until the operation executes (or the transaction is
//! aborted).
//!
//! Wakeups are **per transaction**: each parked invocation registers a
//! private [`WakeupSlot`] (its own mutex + condvar), and the kernel's event
//! stream delivers an outcome directly into the slot of exactly the
//! transaction it concerns. A commit therefore wakes only the threads whose
//! transactions it actually unblocked — there is no global broadcast that
//! stampedes every parked thread on every termination, which is what a
//! single shared condition variable would do under contention.
//!
//! The handle is cheaply cloneable and can be shared across threads.

use crate::errors::CoreError;
use crate::events::{CommitOutcome, KernelEvent, RequestOutcome};
use crate::kernel::SchedulerKernel;
use crate::object::ObjectId;
use crate::policy::SchedulerConfig;
use crate::stats::KernelStats;
use crate::txn::{TxnId, TxnState};
use parking_lot::{Condvar, Mutex};
use sbcc_adt::{AdtOp, AdtSpec, OpCall, OpResult, SemanticObject};
use std::collections::HashMap;
use std::sync::Arc;

/// A handle to an object registered with a [`Database`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectHandle {
    id: ObjectId,
    name: String,
}

impl ObjectHandle {
    /// The object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The registration name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// One parked invocation's private rendezvous: the delivering thread stores
/// the outcome and signals; only the owning thread waits on it.
#[derive(Default)]
struct WakeupSlot {
    outcome: Mutex<Option<RequestOutcome>>,
    cond: Condvar,
}

impl WakeupSlot {
    /// Deliver an outcome and wake the (single) owning waiter.
    fn fill(&self, outcome: RequestOutcome) {
        *self.outcome.lock() = Some(outcome);
        self.cond.notify_one();
    }

    /// Park until an outcome is delivered.
    fn await_outcome(&self) -> RequestOutcome {
        let mut slot = self.outcome.lock();
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            self.cond.wait(&mut slot);
        }
    }
}

struct DbState {
    kernel: SchedulerKernel,
    /// Outcomes delivered to transactions whose pending request completed
    /// while no thread was parked waiting for it (e.g. observers using
    /// [`Database::try_invoke_call`]).
    delivered: HashMap<TxnId, RequestOutcome>,
    /// The wakeup slot of every currently parked invocation, by
    /// transaction.
    waiters: HashMap<TxnId, Arc<WakeupSlot>>,
}

struct Shared {
    state: Mutex<DbState>,
}

/// A thread-safe transactional object store implementing the paper's
/// protocol.
#[derive(Clone)]
pub struct Database {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database").finish_non_exhaustive()
    }
}

impl Database {
    /// Create a database with the given scheduler configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        Database {
            shared: Arc::new(Shared {
                state: Mutex::new(DbState {
                    kernel: SchedulerKernel::new(config),
                    delivered: HashMap::new(),
                    waiters: HashMap::new(),
                }),
            }),
        }
    }

    /// Register a typed atomic data type instance.
    ///
    /// # Panics
    ///
    /// Panics if an object with the same name is already registered; use
    /// [`Database::try_register`] for a fallible variant.
    pub fn register<A: AdtSpec>(&self, name: impl Into<String>, adt: A) -> ObjectHandle {
        self.try_register(name, adt)
            .expect("object name already registered")
    }

    /// Register a typed atomic data type instance, failing on duplicate
    /// names.
    pub fn try_register<A: AdtSpec>(
        &self,
        name: impl Into<String>,
        adt: A,
    ) -> Result<ObjectHandle, CoreError> {
        let name = name.into();
        let mut state = self.shared.state.lock();
        let id = state.kernel.register(name.clone(), adt)?;
        Ok(ObjectHandle { id, name })
    }

    /// Register an erased semantic object.
    pub fn register_object(
        &self,
        name: impl Into<String>,
        object: Box<dyn SemanticObject>,
    ) -> Result<ObjectHandle, CoreError> {
        let name = name.into();
        let mut state = self.shared.state.lock();
        let id = state.kernel.register_object(name.clone(), object)?;
        Ok(ObjectHandle { id, name })
    }

    /// Begin a transaction.
    pub fn begin(&self) -> TxnId {
        self.shared.state.lock().kernel.begin()
    }

    /// Invoke a typed operation, blocking the calling thread while the
    /// request is in conflict with uncommitted operations of other
    /// transactions.
    pub fn invoke<O: AdtOp>(
        &self,
        txn: TxnId,
        object: &ObjectHandle,
        op: O,
    ) -> Result<OpResult, CoreError> {
        self.invoke_call(txn, object, op.to_call())
    }

    /// Invoke an erased operation call, blocking while in conflict.
    pub fn invoke_call(
        &self,
        txn: TxnId,
        object: &ObjectHandle,
        call: OpCall,
    ) -> Result<OpResult, CoreError> {
        let mut state = self.shared.state.lock();
        let outcome = state.kernel.request(txn, object.id, call)?;
        self.deliver_events(&mut state);
        match outcome {
            RequestOutcome::Executed { result, .. } => Ok(result),
            RequestOutcome::Aborted { reason } => Err(CoreError::Aborted { txn, reason }),
            RequestOutcome::Blocked { .. } => {
                // The request may already have been settled by side effects
                // of the call itself (the kernel retries blocked requests to
                // fixpoint before returning).
                let delivered = match state.delivered.remove(&txn) {
                    Some(outcome) => outcome,
                    None => {
                        // Park on a private slot: whichever thread later
                        // drains the kernel event that settles this
                        // transaction fills the slot and wakes only us.
                        let slot = Arc::new(WakeupSlot::default());
                        state.waiters.insert(txn, slot.clone());
                        drop(state);
                        slot.await_outcome()
                    }
                };
                match delivered {
                    RequestOutcome::Executed { result, .. } => Ok(result),
                    RequestOutcome::Aborted { reason } => Err(CoreError::Aborted { txn, reason }),
                    RequestOutcome::Blocked { .. } => {
                        unreachable!("blocked outcomes are never delivered")
                    }
                }
            }
        }
    }

    /// Try to invoke an operation without blocking: returns the raw kernel
    /// outcome (the transaction stays blocked inside the kernel if the
    /// request conflicts, and the result will be delivered on a later
    /// blocking call — this method is intended for tests and tools that want
    /// to observe the scheduler's decisions directly).
    pub fn try_invoke_call(
        &self,
        txn: TxnId,
        object: &ObjectHandle,
        call: OpCall,
    ) -> Result<RequestOutcome, CoreError> {
        let mut state = self.shared.state.lock();
        let outcome = state.kernel.request(txn, object.id, call)?;
        self.deliver_events(&mut state);
        Ok(outcome)
    }

    /// Commit a transaction (actual or pseudo-commit, per the protocol).
    pub fn commit(&self, txn: TxnId) -> Result<CommitOutcome, CoreError> {
        let mut state = self.shared.state.lock();
        let outcome = state.kernel.commit(txn)?;
        self.deliver_events(&mut state);
        Ok(outcome)
    }

    /// Explicitly abort an active transaction.
    pub fn abort(&self, txn: TxnId) -> Result<(), CoreError> {
        let mut state = self.shared.state.lock();
        state.kernel.abort(txn)?;
        self.deliver_events(&mut state);
        Ok(())
    }

    /// The current state of a transaction.
    pub fn txn_state(&self, txn: TxnId) -> Option<TxnState> {
        self.shared.state.lock().kernel.txn_state(txn)
    }

    /// The commit outcome of a transaction that has (pseudo-)committed:
    /// `Committed` once the actual commit happened, `PseudoCommitted` while
    /// it is still waiting on its commit dependencies, `None` otherwise.
    pub fn outcome_of(&self, txn: TxnId) -> Option<CommitOutcome> {
        let state = self.shared.state.lock();
        match state.kernel.txn_state(txn)? {
            TxnState::Committed => Some(CommitOutcome::Committed),
            TxnState::PseudoCommitted => Some(CommitOutcome::PseudoCommitted {
                waiting_on: state.kernel.commit_dependencies_of(txn),
            }),
            _ => None,
        }
    }

    /// Snapshot of the kernel counters.
    pub fn stats(&self) -> KernelStats {
        self.shared.state.lock().kernel.stats().clone()
    }

    /// Number of cycle-detection invocations so far.
    pub fn cycle_checks(&self) -> u64 {
        self.shared.state.lock().kernel.cycle_checks()
    }

    /// Run the commit-order serializability checker (requires history
    /// recording, which [`SchedulerConfig::default`] enables).
    pub fn verify_serializable(&self) -> Result<(), String> {
        let state = self.shared.state.lock();
        crate::history::verify_commit_order_serializable(&state.kernel)
    }

    /// Run the commit-order dependency checker.
    pub fn verify_commit_dependencies(&self) -> Result<(), String> {
        let state = self.shared.state.lock();
        crate::history::verify_commit_order_respects_dependencies(&state.kernel)
    }

    /// Check kernel invariants (acyclic graph, consistent logs and queues).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.shared.state.lock().kernel.check_invariants()
    }

    /// Run a closure against the kernel (advanced / test use).
    pub fn with_kernel<R>(&self, f: impl FnOnce(&mut SchedulerKernel) -> R) -> R {
        let mut state = self.shared.state.lock();
        let result = f(&mut state.kernel);
        self.deliver_events(&mut state);
        result
    }

    fn deliver_events(&self, state: &mut DbState) {
        let events = state.kernel.drain_events();
        for event in events {
            let (txn, outcome) = match event {
                KernelEvent::Unblocked { txn, outcome } => (txn, outcome),
                // The transaction may be parked in `invoke_call`; deliver
                // the abort so it can return an error.
                KernelEvent::Aborted { txn, reason } => {
                    (txn, RequestOutcome::Aborted { reason })
                }
                KernelEvent::Committed { .. } => {
                    // Cascaded commits are observable through `outcome_of`.
                    continue;
                }
            };
            match state.waiters.remove(&txn) {
                // Exactly the thread blocked on this transaction wakes;
                // every other parked invocation stays asleep.
                Some(slot) => slot.fill(outcome),
                None => {
                    state.delivered.insert(txn, outcome);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ConflictPolicy;
    use sbcc_adt::{Stack, StackOp, TableObject, TableOp, Value};
    use std::time::Duration;

    fn db() -> Database {
        Database::new(SchedulerConfig::default())
    }

    #[test]
    fn register_and_handle_accessors() {
        let db = db();
        let h = db.register("jobs", Stack::new());
        assert_eq!(h.name(), "jobs");
        assert_eq!(h.id(), ObjectId(0));
        assert!(db.try_register("jobs", Stack::new()).is_err());
        let h2 = db
            .register_object("jobs2", Box::new(sbcc_adt::AdtObject::new(Stack::new())))
            .unwrap();
        assert_eq!(h2.id(), ObjectId(1));
        assert!(format!("{db:?}").contains("Database"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn register_panics_on_duplicate() {
        let db = db();
        db.register("x", Stack::new());
        db.register("x", Stack::new());
    }

    #[test]
    fn pseudo_commit_then_cascaded_commit() {
        let db = db();
        let s = db.register("jobs", Stack::new());
        let t1 = db.begin();
        let t2 = db.begin();
        db.invoke(t1, &s, StackOp::Push(Value::Int(4))).unwrap();
        db.invoke(t2, &s, StackOp::Push(Value::Int(2))).unwrap();

        let o2 = db.commit(t2).unwrap();
        assert!(o2.is_pseudo_commit());
        assert_eq!(db.txn_state(t2), Some(TxnState::PseudoCommitted));
        assert_eq!(db.outcome_of(t2), Some(o2));

        let o1 = db.commit(t1).unwrap();
        assert!(o1.is_full_commit());
        assert_eq!(db.outcome_of(t2), Some(CommitOutcome::Committed));
        assert_eq!(db.outcome_of(t1), Some(CommitOutcome::Committed));

        db.verify_serializable().unwrap();
        db.verify_commit_dependencies().unwrap();
        db.check_invariants().unwrap();
        let stats = db.stats();
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.pseudo_commits, 1);
        assert!(db.cycle_checks() >= 1);
    }

    #[test]
    fn blocked_invoke_wakes_up_when_holder_commits() {
        let db = db();
        let s = db.register("jobs", Stack::new());
        let t1 = db.begin();
        db.invoke(t1, &s, StackOp::Push(Value::Int(7))).unwrap();

        let db2 = db.clone();
        let s2 = s.clone();
        let handle = std::thread::spawn(move || {
            let t2 = db2.begin();
            // pop conflicts with the uncommitted push: this blocks until T1
            // commits, then returns the pushed value.
            let popped = db2.invoke(t2, &s2, StackOp::Pop).unwrap();
            db2.commit(t2).unwrap();
            popped
        });

        // Give the other thread time to block, then commit.
        std::thread::sleep(Duration::from_millis(50));
        db.commit(t1).unwrap();
        let popped = handle.join().expect("worker thread");
        assert_eq!(popped, OpResult::Value(Value::Int(7)));
        db.verify_serializable().unwrap();
        let stats = db.stats();
        assert_eq!(stats.blocks, 1);
        assert_eq!(stats.unblocks, 1);
    }

    #[test]
    fn abort_releases_waiters_without_cascading_aborts() {
        let db = db();
        let table = db.register("accounts", TableObject::new());
        let t1 = db.begin();
        // T1 inserts a key but will abort.
        db.invoke(t1, &table, TableOp::Insert(Value::Int(1), Value::Int(100)))
            .unwrap();

        // T2 executes a recoverable insert on a different key and
        // pseudo-commits: it must survive T1's abort (no cascading aborts)
        // ... actually inserts on different keys commute, so use size-like
        // dependency instead: T2 inserts same key -> conflicts, so pick a
        // recoverable pair: T2 does an insert with the same key? That
        // conflicts. Use delete of a different key (commutes). To exercise
        // recoverability use Size executed by T1? Size after insert is not
        // recoverable. Keep it simple: T2 inserts a different key (commutes)
        // and fully commits even while T1 is live.
        let t2 = db.begin();
        db.invoke(t2, &table, TableOp::Insert(Value::Int(2), Value::Int(200)))
            .unwrap();
        assert!(db.commit(t2).unwrap().is_full_commit());

        db.abort(t1).unwrap();
        assert_eq!(db.txn_state(t1), Some(TxnState::Aborted));
        db.verify_serializable().unwrap();

        // The committed state contains key 2 only.
        let t3 = db.begin();
        let r = db
            .invoke(t3, &table, TableOp::Lookup(Value::Int(2)))
            .unwrap();
        assert_eq!(r, OpResult::Value(Value::Int(200)));
        let r = db
            .invoke(t3, &table, TableOp::Lookup(Value::Int(1)))
            .unwrap();
        assert_eq!(r, OpResult::Null);
        db.commit(t3).unwrap();
    }

    #[test]
    fn invoke_after_scheduler_abort_returns_error() {
        let db = Database::new(
            SchedulerConfig::default().with_policy(ConflictPolicy::CommutativityOnly),
        );
        let s = db.register("s", Stack::new());
        let t1 = db.begin();
        let t2 = db.begin();
        db.invoke(t1, &s, StackOp::Push(Value::Int(1))).unwrap();
        // Under commutativity-only, T2's push conflicts and blocks; force a
        // deadlock by making T1 also wait on T2 through a second object.
        let s2 = db.register("s2", Stack::new());
        db.invoke(t2, &s2, StackOp::Push(Value::Int(2))).unwrap();

        let db_clone = db.clone();
        let s_clone = s.clone();
        let blocker = std::thread::spawn(move || db_clone.invoke(t2, &s_clone, StackOp::Push(Value::Int(3))));
        std::thread::sleep(Duration::from_millis(50));
        // T1 now requests a push on s2 -> wait-for cycle -> T1 is aborted.
        let result = db.invoke(t1, &s2, StackOp::Push(Value::Int(4)));
        assert!(matches!(result, Err(CoreError::Aborted { .. })));
        // T2 unblocks once T1's abort removes its operations.
        let blocked_result = blocker.join().unwrap();
        assert!(blocked_result.is_ok());
        db.commit(t2).unwrap();
        db.verify_serializable().unwrap();
    }

    #[test]
    fn with_kernel_exposes_the_kernel() {
        let db = db();
        db.register("s", Stack::new());
        let count = db.with_kernel(|k| k.object_count());
        assert_eq!(count, 1);
    }
}
