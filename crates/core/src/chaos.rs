//! Chaos hooks: the deterministic-testing seam of the concurrency layer.
//!
//! The sharded kernel's interesting bugs live in *interleavings* — a victim
//! abort racing a commit vote, a cancellation racing an outcome delivery, a
//! fill racing a claim. Wall-clock stress tests can hit those windows but
//! cannot reproduce them; this module makes the windows **schedulable**: the
//! concurrency seams of [`crate::db`], [`crate::shard`] and [`crate::aio`]
//! announce themselves through a per-thread [`ChaosHook`], and a harness
//! (the `sbcc-dst` crate) turns each announcement into a controlled context
//! switch drawn from a seeded RNG, so every interleaving is a pure function
//! of a `u64` seed.
//!
//! # The three layers
//!
//! 1. **Yield points** ([`ChaosPoint`]): named positions in the protocol
//!    where a hook may suspend the calling thread and run another session
//!    instead — before/after the sessions-lock window of
//!    `Database::deliver_events`, between the per-shard votes of a
//!    multi-shard commit and its `drain_coordination_ready` re-votes, and
//!    at the claim/fill halves of the waiter rendezvous.
//! 2. **Cooperative primitives** ([`sync`]): drop-in `Mutex`/`Condvar`
//!    wrappers the concurrency layer uses instead of `parking_lot`'s.
//!    When a hook is installed they convert blocking into cooperative
//!    spinning (`try_lock` + yield, condvar waits become scheduler-timed
//!    spurious wakeups), so a simulation harness that runs exactly one
//!    thread at a time can never be deadlocked by a yield point placed
//!    inside a critical section.
//! 3. **Fault injection**: hooks may also *perturb* the execution where the
//!    protocol leaves freedom — [`reorder_events`] lets a hook permute the
//!    delivery order of a drained event batch (per-transaction order is
//!    preserved by the harness; cross-transaction delivery order is
//!    unordered by contract).
//! 4. **Virtual clock** ([`ClockHook`]): time-dependent features (the
//!    network front-end's per-connection read timeout) consult
//!    [`timeout_fires`] before trusting the real clock. A harness installs
//!    a process-global clock hook to *decide* deterministically whether a
//!    timeout has elapsed — firing timeouts that wall-clock would take
//!    seconds to reach, or holding them off forever — so the
//!    timeout/auto-abort paths become schedulable like everything else.
//!    This hook is process-global (unlike the per-thread [`ChaosHook`])
//!    because the threads that wait on timeouts are spawned internally by
//!    the feature under test, where a harness cannot reach them.
//!
//! # Zero cost when disabled
//!
//! Everything here is gated behind the `chaos` cargo feature (off by
//! default). Without it, [`reach`] is an empty `#[inline(always)]`
//! function and the [`sync`] wrappers are re-exports of the plain
//! `parking_lot` types — release builds compile the hooks to no-ops.
//! With the feature on but no hook installed, each seam costs one
//! thread-local read.
//!
//! Hooks are **thread-local**: a harness installs a hook on the session
//! threads it spawns (`install_thread_hook`) and every other thread in
//! the process — including other tests running concurrently — passes
//! through untouched.

use crate::txn::TxnId;
use std::fmt;

/// A named yield point in the concurrency layer. The variants are the
/// yield-point catalog documented in `ARCHITECTURE.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ChaosPoint {
    /// `Database::deliver_events` drained a non-empty event batch from the
    /// sharded kernel and is about to acquire the sessions lock.
    DeliverDrain,
    /// `deliver_events` released the sessions lock with the claimed waiter
    /// slots in hand, before any of them is filled.
    DeliverClaimed,
    /// About to fill one claimed waiter slot (per-slot, so other sessions
    /// can interleave between two fills of the same batch).
    DeliverFill,
    /// `Database::claim_or_wait` entry: a session is about to either claim
    /// its delivered outcome or register its waiter slot (the claim half
    /// of the rendezvous; [`ChaosPoint::DeliverFill`] is the fill half).
    RendezvousClaim,
    /// Between per-shard dependency collections in phase 1 of a
    /// multi-shard commit vote.
    VotePeek,
    /// Between per-shard applications in phase 2a of a multi-shard commit
    /// (unanimous vote, `commit_coordinated` per shard).
    VoteApply,
    /// A `drain_coordination_ready` re-vote is starting for a
    /// pseudo-committed coordinated transaction.
    ReVote,
    /// Between the per-shard write-ahead-log flushes of a multi-shard
    /// commit's fragments (after the fragments are appended, before the
    /// cross-shard marker is written): a crash here must lose the whole
    /// transaction at recovery.
    WalFlush,
    /// `begin_snapshot` is about to draw the snapshot's begin stamp under
    /// the termination lock (before the version floor is published).
    SnapshotStamp,
    /// A snapshot session is about to answer a read from the multi-version
    /// store (after the readonly check, before the version-chain lookup).
    SnapshotRead,
    /// The SSI guard is about to install or inspect rw-antidependency
    /// conflict flags (read-time writer scan, commit-time SIREAD scan, or
    /// classified-op in-flag check).
    SsiEdge,
    /// A *declared* batch run is about to take its shard lock for the
    /// group-admission window (coverage scan, disjointness scan, whole-
    /// group execution — all under that one hold).
    GroupAdmit,
    /// A cooperative [`sync::Mutex`] found the lock held and yields before
    /// retrying.
    LockContended,
    /// A cooperative [`sync::Condvar`] wait: the guard has been released
    /// and the thread yields; the wait returns as a spurious wakeup.
    CondvarWait,
}

impl fmt::Display for ChaosPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChaosPoint::DeliverDrain => "deliver-drain",
            ChaosPoint::DeliverClaimed => "deliver-claimed",
            ChaosPoint::DeliverFill => "deliver-fill",
            ChaosPoint::RendezvousClaim => "rendezvous-claim",
            ChaosPoint::VotePeek => "vote-peek",
            ChaosPoint::VoteApply => "vote-apply",
            ChaosPoint::ReVote => "re-vote",
            ChaosPoint::WalFlush => "wal-flush",
            ChaosPoint::SnapshotStamp => "snapshot-stamp",
            ChaosPoint::SnapshotRead => "snapshot-read",
            ChaosPoint::SsiEdge => "ssi-edge",
            ChaosPoint::GroupAdmit => "group-admit",
            ChaosPoint::LockContended => "lock-contended",
            ChaosPoint::CondvarWait => "condvar-wait",
        })
    }
}

/// A per-thread interleaving/fault controller. Implemented by the DST
/// harness; every method is called from the instrumented thread itself.
pub trait ChaosHook: Send + Sync {
    /// The thread reached a yield point. The hook may block the thread
    /// (handing the turn to another session) and return when it is this
    /// thread's turn again. `txn` is the transaction the point concerns,
    /// when the seam knows it.
    fn reach(&self, point: ChaosPoint, txn: Option<TxnId>);

    /// While the scheduler drives threads one at a time ([`ChaosHook::reach`]
    /// blocks), cooperative mode must stay on. A hook switches this to
    /// `false` to *free-run*: every seam reverts to plain blocking behaviour
    /// so in-flight sessions can drain on real OS scheduling (used after a
    /// liveness-deadline verdict).
    fn cooperative(&self) -> bool {
        true
    }

    /// Offered a drained event batch (`txns[i]` is the transaction of the
    /// `i`-th event) before delivery. Return a permutation of
    /// `0..txns.len()` to reorder the deliveries, or `None` to keep the
    /// kernel's order. Implementations must preserve the relative order of
    /// events belonging to the same transaction.
    fn reorder_events(&self, txns: &[TxnId]) -> Option<Vec<usize>> {
        let _ = txns;
        None
    }
}

/// A named timeout site that consults the virtual clock (see
/// [`ClockHook`]). The catalog grows with each time-dependent feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TimeoutPoint {
    /// The network server's per-connection read deadline: the reader saw
    /// no frame for one poll interval and asks whether the connection's
    /// read timeout has elapsed (firing tears the connection down and
    /// auto-aborts its live sessions).
    NetRead,
    /// The write-ahead log's group-commit flush window: the flusher thread
    /// asks whether the current window has elapsed (firing writes and
    /// fsyncs every shard's buffered records, waking the committers
    /// blocked in `wait_durable`).
    GroupCommit,
}

impl fmt::Display for TimeoutPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TimeoutPoint::NetRead => "net-read",
            TimeoutPoint::GroupCommit => "group-commit",
        })
    }
}

/// A **process-global** virtual-clock controller, installed by a
/// deterministic-simulation harness via `install_clock_hook` (present
/// only with the `chaos` feature, like the thread-hook installers).
///
/// Every time-dependent seam polls [`timeout_fires`] each time it would
/// otherwise consult the real clock. The hook answers:
///
/// * `Some(true)` — the virtual deadline has elapsed; fire the timeout
///   now, regardless of how little wall time has passed.
/// * `Some(false)` — the virtual deadline has *not* elapsed; keep
///   waiting, regardless of how much wall time has passed.
/// * `None` — this site is not under virtual control; use the real clock.
pub trait ClockHook: Send + Sync {
    /// Should the timeout at `point` fire? Called from whichever thread
    /// owns the deadline (often one spawned by the feature under test),
    /// potentially many times per deadline — implementations must be
    /// cheap and reentrant.
    fn timeout_fires(&self, point: TimeoutPoint) -> Option<bool>;
}

#[cfg(feature = "chaos")]
mod enabled {
    use super::{ChaosHook, ChaosPoint};
    use crate::txn::TxnId;
    use std::cell::RefCell;
    use std::sync::Arc;

    thread_local! {
        static HOOK: RefCell<Option<Arc<dyn ChaosHook>>> = const { RefCell::new(None) };
    }

    /// Install a chaos hook for the **calling thread**. Replaces any
    /// previously installed hook.
    pub fn install_thread_hook(hook: Arc<dyn ChaosHook>) {
        HOOK.with(|h| *h.borrow_mut() = Some(hook));
    }

    /// Remove the calling thread's chaos hook (no-op when none is
    /// installed).
    pub fn clear_thread_hook() {
        HOOK.with(|h| *h.borrow_mut() = None);
    }

    /// Whether the calling thread currently has a hook installed **and**
    /// that hook asks for cooperative scheduling.
    #[inline]
    pub fn active() -> bool {
        HOOK.with(|h| match &*h.borrow() {
            Some(hook) => hook.cooperative(),
            None => false,
        })
    }

    /// Announce a yield point to the calling thread's hook, if any.
    #[inline]
    pub fn reach(point: ChaosPoint, txn: Option<TxnId>) {
        let hook = HOOK.with(|h| h.borrow().clone());
        if let Some(hook) = hook {
            hook.reach(point, txn);
        }
    }

    /// Offer an event batch to the calling thread's hook for reordering.
    #[inline]
    pub fn reorder_events(txns: &[TxnId]) -> Option<Vec<usize>> {
        let hook = HOOK.with(|h| h.borrow().clone());
        hook.and_then(|hook| hook.reorder_events(txns))
    }

    use super::{ClockHook, TimeoutPoint};
    use std::sync::Mutex as StdMutex;

    static CLOCK: StdMutex<Option<Arc<dyn ClockHook>>> = StdMutex::new(None);

    /// Install the **process-global** clock hook (see [`ClockHook`]).
    /// Replaces any previously installed hook.
    pub fn install_clock_hook(hook: Arc<dyn ClockHook>) {
        *CLOCK.lock().expect("clock hook lock") = Some(hook);
    }

    /// Remove the process-global clock hook (no-op when none is
    /// installed).
    pub fn clear_clock_hook() {
        *CLOCK.lock().expect("clock hook lock") = None;
    }

    /// Ask the process-global clock hook whether the timeout at `point`
    /// should fire; `None` (also returned when no hook is installed)
    /// defers to the real clock.
    #[inline]
    pub fn timeout_fires(point: TimeoutPoint) -> Option<bool> {
        let hook = CLOCK.lock().expect("clock hook lock").clone();
        hook.and_then(|hook| hook.timeout_fires(point))
    }
}

#[cfg(feature = "chaos")]
pub use enabled::{
    active, clear_clock_hook, clear_thread_hook, install_clock_hook, install_thread_hook, reach,
    reorder_events, timeout_fires,
};

#[cfg(not(feature = "chaos"))]
mod disabled {
    use super::ChaosPoint;
    use crate::txn::TxnId;

    /// No-op: the `chaos` feature is disabled.
    #[inline(always)]
    pub fn active() -> bool {
        false
    }

    /// No-op: the `chaos` feature is disabled.
    #[inline(always)]
    pub fn reach(_point: ChaosPoint, _txn: Option<TxnId>) {}

    /// No-op: the `chaos` feature is disabled.
    #[inline(always)]
    pub fn reorder_events(_txns: &[TxnId]) -> Option<Vec<usize>> {
        None
    }

    /// Always defers to the real clock: the `chaos` feature is disabled.
    #[inline(always)]
    pub fn timeout_fires(_point: super::TimeoutPoint) -> Option<bool> {
        None
    }
}

#[cfg(not(feature = "chaos"))]
pub use disabled::{active, reach, reorder_events, timeout_fires};

/// The synchronisation primitives of the concurrency layer.
///
/// Without the `chaos` feature these are **re-exports** of the
/// `parking_lot` types — zero wrapper cost. With the feature they become
/// cooperative: when the calling thread has an active [`ChaosHook`],
/// `Mutex::lock` spins through `try_lock` + [`reach`] instead of parking,
/// and `Condvar::wait` releases the lock, yields once, re-acquires and
/// returns (a scheduler-timed spurious wakeup — every waiter in this
/// codebase re-checks its predicate in a loop). A simulation scheduler
/// that runs one thread at a time therefore never wedges on a lock held
/// by a suspended thread: the holder is always runnable and the contender
/// burns scheduler turns, not OS blocking.
pub mod sync {
    #[cfg(not(feature = "chaos"))]
    pub use parking_lot::{Condvar, Mutex, MutexGuard};

    #[cfg(feature = "chaos")]
    pub use cooperative::{Condvar, Mutex, MutexGuard};

    #[cfg(feature = "chaos")]
    mod cooperative {
        use super::super::{active, reach, ChaosPoint};
        use std::ops::{Deref, DerefMut};

        /// Chaos-aware mutex (see [the module docs](self)).
        #[derive(Debug, Default)]
        pub struct Mutex<T: ?Sized> {
            inner: parking_lot::Mutex<T>,
        }

        impl<T> Mutex<T> {
            /// Create a mutex.
            pub const fn new(value: T) -> Self {
                Mutex {
                    inner: parking_lot::Mutex::new(value),
                }
            }

            /// Consume the mutex, returning the inner value.
            pub fn into_inner(self) -> T {
                self.inner.into_inner()
            }
        }

        impl<T: ?Sized> Mutex<T> {
            /// Acquire the lock. Under an active hook, contention yields
            /// through the hook instead of parking the OS thread.
            pub fn lock(&self) -> MutexGuard<'_, T> {
                if active() {
                    loop {
                        if let Some(g) = self.inner.try_lock() {
                            return MutexGuard {
                                mutex: self,
                                inner: Some(g),
                            };
                        }
                        reach(ChaosPoint::LockContended, None);
                    }
                }
                MutexGuard {
                    mutex: self,
                    inner: Some(self.inner.lock()),
                }
            }
        }

        /// RAII guard returned by [`Mutex::lock`]. Holds a back-reference
        /// to its mutex so [`Condvar::wait`] can release and cooperatively
        /// re-acquire it.
        #[derive(Debug)]
        pub struct MutexGuard<'a, T: ?Sized> {
            mutex: &'a Mutex<T>,
            /// `None` only transiently inside [`Condvar::wait`].
            inner: Option<parking_lot::MutexGuard<'a, T>>,
        }

        impl<T: ?Sized> Deref for MutexGuard<'_, T> {
            type Target = T;

            fn deref(&self) -> &T {
                self.inner.as_ref().expect("guard present outside wait")
            }
        }

        impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
            fn deref_mut(&mut self) -> &mut T {
                self.inner.as_mut().expect("guard present outside wait")
            }
        }

        /// Chaos-aware condition variable (see [the module docs](self)).
        #[derive(Debug, Default)]
        pub struct Condvar {
            inner: parking_lot::Condvar,
        }

        impl Condvar {
            /// Create a condition variable.
            pub const fn new() -> Self {
                Condvar {
                    inner: parking_lot::Condvar::new(),
                }
            }

            /// Release the guarded lock and block until notified (or, under
            /// an active hook, until the scheduler grants the next turn —
            /// returning as a spurious wakeup). Re-acquires before
            /// returning.
            pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
                if active() {
                    let mutex = guard.mutex;
                    guard.inner = None; // release
                    reach(ChaosPoint::CondvarWait, None);
                    *guard = mutex.lock();
                    return;
                }
                self.inner
                    .wait(guard.inner.as_mut().expect("guard present outside wait"));
            }

            /// Wake one waiting thread.
            pub fn notify_one(&self) {
                self.inner.notify_one();
            }

            /// Wake all waiting threads.
            pub fn notify_all(&self) {
                self.inner.notify_all();
            }
        }
    }
}

#[cfg(all(test, feature = "chaos"))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct CountingHook {
        reached: AtomicUsize,
    }

    impl ChaosHook for CountingHook {
        fn reach(&self, _point: ChaosPoint, _txn: Option<TxnId>) {
            self.reached.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn hook_is_thread_local_and_removable() {
        assert!(!active(), "no hook installed yet");
        let hook = Arc::new(CountingHook {
            reached: AtomicUsize::new(0),
        });
        install_thread_hook(hook.clone());
        assert!(active());
        reach(ChaosPoint::DeliverDrain, None);
        assert_eq!(hook.reached.load(Ordering::Relaxed), 1);

        // Another thread sees no hook.
        std::thread::spawn(|| assert!(!active())).join().unwrap();

        clear_thread_hook();
        assert!(!active());
        reach(ChaosPoint::DeliverDrain, None);
        assert_eq!(hook.reached.load(Ordering::Relaxed), 1, "cleared hook not called");
    }

    struct FixedClock(Option<bool>);

    impl ClockHook for FixedClock {
        fn timeout_fires(&self, _point: TimeoutPoint) -> Option<bool> {
            self.0
        }
    }

    #[test]
    fn clock_hook_is_process_global_and_removable() {
        assert_eq!(timeout_fires(TimeoutPoint::NetRead), None, "no hook yet");
        install_clock_hook(Arc::new(FixedClock(Some(true))));
        assert_eq!(timeout_fires(TimeoutPoint::NetRead), Some(true));
        // Unlike the interleaving hook, the clock is process-global: a
        // freshly spawned thread (as the server's reader threads are) sees
        // the same virtual clock.
        std::thread::spawn(|| {
            assert_eq!(timeout_fires(TimeoutPoint::NetRead), Some(true));
        })
        .join()
        .unwrap();
        clear_clock_hook();
        assert_eq!(timeout_fires(TimeoutPoint::NetRead), None);
        assert_eq!(TimeoutPoint::NetRead.to_string(), "net-read");
    }

    #[test]
    fn cooperative_condvar_wait_is_spurious_under_hook() {
        let hook = Arc::new(CountingHook {
            reached: AtomicUsize::new(0),
        });
        install_thread_hook(hook.clone());
        let mutex = sync::Mutex::new(0);
        let cond = sync::Condvar::new();
        let mut guard = mutex.lock();
        // Returns immediately (spurious) instead of blocking forever.
        cond.wait(&mut guard);
        assert_eq!(*guard, 0);
        drop(guard);
        assert!(hook.reached.load(Ordering::Relaxed) >= 1, "wait yielded");
        clear_thread_hook();
    }
}
