//! Transaction identifiers, states and per-transaction bookkeeping.

use crate::object::ObjectId;
use sbcc_adt::{AccessSet, OpCall, OpResult};
use std::collections::HashSet;
use std::fmt;

/// A transaction identifier. Ids are assigned in `begin` order and are never
/// reused, so a smaller id always denotes an older transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// The life cycle of a transaction under the protocol.
///
/// ```text
/// Active ⇄ Blocked
///   │  \
///   │   └──────────► Aborted
///   ▼
/// PseudoCommitted ──► Committed
///   (never aborts)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnState {
    /// Executing operations.
    Active,
    /// Waiting for a conflicting transaction to terminate; has exactly one
    /// pending operation request.
    Blocked,
    /// Finished from the user's perspective; durable results; waiting for
    /// the transactions it has commit dependencies on to terminate
    /// (Section 4.3). A pseudo-committed transaction will definitely commit.
    PseudoCommitted,
    /// Actually committed; removed from all logs and from the dependency
    /// graph.
    Committed,
    /// Aborted; all effects undone.
    Aborted,
}

impl TxnState {
    /// `true` while the transaction still participates in conflict
    /// determination (its operations remain in the execution logs).
    pub fn is_live(self) -> bool {
        matches!(
            self,
            TxnState::Active | TxnState::Blocked | TxnState::PseudoCommitted
        )
    }

    /// `true` once the transaction has terminated (committed or aborted).
    pub fn is_terminated(self) -> bool {
        matches!(self, TxnState::Committed | TxnState::Aborted)
    }
}

impl fmt::Display for TxnState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxnState::Active => "active",
            TxnState::Blocked => "blocked",
            TxnState::PseudoCommitted => "pseudo-committed",
            TxnState::Committed => "committed",
            TxnState::Aborted => "aborted",
        };
        f.write_str(s)
    }
}

/// One operation executed by a transaction (recorded for intentions-list
/// commit processing, undo and history checking).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutedOp {
    /// Object the operation ran against.
    pub object: ObjectId,
    /// The operation call.
    pub call: OpCall,
    /// The result returned to the transaction.
    pub result: OpResult,
    /// Global execution sequence number (total order of executions).
    pub seq: u64,
}

/// A transaction's pending (blocked) operation request.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingRequest {
    /// Object the request targets.
    pub object: ObjectId,
    /// The operation call.
    pub call: OpCall,
}

/// One element of a grouped submission: an operation call aimed at a
/// specific object. A batch is an ordered `Vec<BatchCall>` handed to
/// [`crate::SchedulerKernel::request_batch`] (or built through the
/// [`crate::db::Batch`] session builder).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchCall {
    /// Object the call targets.
    pub object: ObjectId,
    /// The operation call.
    pub call: OpCall,
}

impl BatchCall {
    /// Convenience constructor.
    pub fn new(object: ObjectId, call: OpCall) -> Self {
        BatchCall { object, call }
    }
}

/// Internal per-transaction record kept by the kernel.
#[derive(Debug, Clone)]
pub struct TxnRecord {
    /// The transaction's id.
    pub id: TxnId,
    /// Current state.
    pub state: TxnState,
    /// Operations executed so far, in execution order.
    pub ops: Vec<ExecutedOp>,
    /// Objects visited (at least one operation executed or pending).
    pub touched: HashSet<ObjectId>,
    /// The pending request, when blocked.
    pub pending: Option<PendingRequest>,
    /// Number of times this transaction has been blocked.
    pub times_blocked: u64,
    /// Commit order index, assigned at actual commit.
    pub commit_index: Option<u64>,
    /// `true` when the transaction's termination is driven by an external
    /// cross-shard coordinator (see [`crate::shard`]): the kernel must not
    /// cascade-commit it on its own (its commit dependencies may span other
    /// shards) and must never select it as a cycle victim (another shard
    /// could be voting on its commit concurrently).
    pub coordinated: bool,
    /// `true` once the cross-shard coordinator has written this
    /// transaction's operations to the write-ahead log (the durability
    /// step of a multi-shard commit runs *before* the per-shard in-memory
    /// applications); tells the kernel's commit path not to log it again.
    pub wal_logged: bool,
    /// Union of the access sets this transaction's *declared* batches have
    /// promised so far (`None` until the first declared batch). Kept for
    /// introspection and as the seam for footprint-driven object placement
    /// (see ROADMAP): the scheduler itself re-derives admission decisions
    /// per batch and never trusts this union.
    pub declared: Option<AccessSet<ObjectId>>,
}

impl TxnRecord {
    /// A fresh, active transaction record.
    pub fn new(id: TxnId) -> Self {
        TxnRecord {
            id,
            state: TxnState::Active,
            ops: Vec::new(),
            touched: HashSet::new(),
            pending: None,
            times_blocked: 0,
            commit_index: None,
            coordinated: false,
            wal_logged: false,
            declared: None,
        }
    }

    /// Number of operations executed so far.
    pub fn executed_ops(&self) -> usize {
        self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_display_and_order() {
        assert_eq!(TxnId(7).to_string(), "T7");
        assert!(TxnId(1) < TxnId(2));
    }

    #[test]
    fn state_predicates() {
        assert!(TxnState::Active.is_live());
        assert!(TxnState::Blocked.is_live());
        assert!(TxnState::PseudoCommitted.is_live());
        assert!(!TxnState::Committed.is_live());
        assert!(!TxnState::Aborted.is_live());
        assert!(TxnState::Committed.is_terminated());
        assert!(TxnState::Aborted.is_terminated());
        assert!(!TxnState::Active.is_terminated());
    }

    #[test]
    fn state_display() {
        assert_eq!(TxnState::PseudoCommitted.to_string(), "pseudo-committed");
        assert_eq!(TxnState::Active.to_string(), "active");
        assert_eq!(TxnState::Blocked.to_string(), "blocked");
        assert_eq!(TxnState::Committed.to_string(), "committed");
        assert_eq!(TxnState::Aborted.to_string(), "aborted");
    }

    #[test]
    fn record_starts_active_and_empty() {
        let r = TxnRecord::new(TxnId(1));
        assert_eq!(r.state, TxnState::Active);
        assert_eq!(r.executed_ops(), 0);
        assert!(r.pending.is_none());
        assert!(r.touched.is_empty());
        assert_eq!(r.times_blocked, 0);
        assert_eq!(r.commit_index, None);
    }
}
