//! Error types for the concurrency-control kernel and the [`crate::Database`]
//! front-end.

use crate::events::AbortReason;
use crate::txn::{TxnId, TxnState};
use std::fmt;

/// Errors returned by kernel and database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The transaction id is unknown (never begun in this kernel).
    UnknownTransaction(TxnId),
    /// The object id or name is unknown.
    UnknownObject(String),
    /// The transaction is not in a state that allows the attempted action
    /// (e.g. committing a blocked transaction, invoking an operation from a
    /// terminated transaction).
    InvalidState {
        /// The transaction concerned.
        txn: TxnId,
        /// Its current state.
        state: TxnState,
        /// The action that was attempted.
        action: &'static str,
    },
    /// The transaction was aborted by the scheduler (deadlock or
    /// commit-dependency cycle) or by an explicit abort.
    Aborted {
        /// The transaction concerned.
        txn: TxnId,
        /// Why it was aborted.
        reason: AbortReason,
    },
    /// An object with this name is already registered.
    DuplicateObject(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownTransaction(t) => write!(f, "unknown transaction {t}"),
            CoreError::UnknownObject(name) => write!(f, "unknown object {name:?}"),
            CoreError::InvalidState { txn, state, action } => {
                write!(f, "cannot {action}: transaction {txn} is {state}")
            }
            CoreError::Aborted { txn, reason } => {
                write!(f, "transaction {txn} aborted: {reason}")
            }
            CoreError::DuplicateObject(name) => {
                write!(f, "an object named {name:?} is already registered")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let t = TxnId(3);
        assert!(CoreError::UnknownTransaction(t).to_string().contains("T3"));
        assert!(CoreError::UnknownObject("acct".into())
            .to_string()
            .contains("acct"));
        let e = CoreError::InvalidState {
            txn: t,
            state: TxnState::Blocked,
            action: "commit",
        };
        assert!(e.to_string().contains("commit"));
        assert!(e.to_string().contains("blocked"));
        let e = CoreError::Aborted {
            txn: t,
            reason: AbortReason::DeadlockCycle,
        };
        assert!(e.to_string().contains("aborted"));
        assert!(CoreError::DuplicateObject("x".into()).to_string().contains("x"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&CoreError::UnknownTransaction(TxnId(1)));
    }
}
