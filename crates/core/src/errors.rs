//! Error types for the concurrency-control kernel and the [`crate::Database`]
//! front-end.

use crate::events::AbortReason;
use crate::txn::{TxnId, TxnState};
use std::fmt;

/// Errors returned by kernel and database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The transaction id is unknown (never begun in this kernel).
    UnknownTransaction(TxnId),
    /// The object id or name is unknown.
    UnknownObject(String),
    /// The transaction is not in a state that allows the attempted action
    /// (e.g. committing a blocked transaction, invoking an operation from a
    /// terminated transaction).
    InvalidState {
        /// The transaction concerned.
        txn: TxnId,
        /// Its current state.
        state: TxnState,
        /// The action that was attempted.
        action: &'static str,
    },
    /// The transaction was aborted by the scheduler (deadlock or
    /// commit-dependency cycle) or by an explicit abort.
    Aborted {
        /// The transaction concerned.
        txn: TxnId,
        /// Why it was aborted.
        reason: AbortReason,
    },
    /// An object with this name is already registered.
    DuplicateObject(String),
    /// [`crate::db::Transaction::settle_pending`] was called while the
    /// transaction had no blocked operation in flight and no settled outcome
    /// waiting to be claimed.
    NoPendingOperation(TxnId),
    /// A retry runner ([`crate::Database::run`] /
    /// [`crate::aio::AsyncDatabase::run`]) exhausted its
    /// [`crate::SchedulerConfig::max_retries`] budget: every attempt ended
    /// in a scheduler abort. The livelock guardrail for adversarial
    /// schedules and fault-injection harnesses.
    RetriesExhausted {
        /// The last attempt's transaction.
        txn: TxnId,
        /// Total attempts made (the configured budget plus the initial
        /// attempt).
        attempts: usize,
    },
    /// A durability (write-ahead log) failure: the log directory could not
    /// be opened or repaired, replay diverged from the logged results, or a
    /// registration is incompatible with semantic logging (a type the
    /// object factory cannot reconstruct, or a non-empty initial state the
    /// log would not capture).
    Durability(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownTransaction(t) => write!(f, "unknown transaction {t}"),
            CoreError::UnknownObject(name) => write!(f, "unknown object {name:?}"),
            CoreError::InvalidState { txn, state, action } => {
                write!(f, "cannot {action}: transaction {txn} is {state}")
            }
            CoreError::Aborted { txn, reason } => {
                write!(f, "transaction {txn} aborted: {reason}")
            }
            CoreError::DuplicateObject(name) => {
                write!(f, "an object named {name:?} is already registered")
            }
            CoreError::NoPendingOperation(txn) => {
                write!(f, "transaction {txn} has no pending operation to settle")
            }
            CoreError::RetriesExhausted { txn, attempts } => {
                write!(
                    f,
                    "retry budget exhausted after {attempts} attempts (last transaction {txn})"
                )
            }
            CoreError::Durability(msg) => write!(f, "durability failure: {msg}"),
        }
    }
}

impl CoreError {
    /// `true` when the error reports a scheduler-initiated abort (deadlock,
    /// commit-dependency cycle or victim selection) of the given
    /// transaction — the errors a retry loop such as
    /// [`crate::Database::run`] transparently restarts on.
    pub fn is_scheduler_abort_of(&self, txn: TxnId) -> bool {
        matches!(
            self,
            CoreError::Aborted { txn: t, reason } if *t == txn && reason.is_scheduler_initiated()
        )
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let t = TxnId(3);
        assert!(CoreError::UnknownTransaction(t).to_string().contains("T3"));
        assert!(CoreError::UnknownObject("acct".into())
            .to_string()
            .contains("acct"));
        let e = CoreError::InvalidState {
            txn: t,
            state: TxnState::Blocked,
            action: "commit",
        };
        assert!(e.to_string().contains("commit"));
        assert!(e.to_string().contains("blocked"));
        let e = CoreError::Aborted {
            txn: t,
            reason: AbortReason::DeadlockCycle,
        };
        assert!(e.to_string().contains("aborted"));
        assert!(CoreError::DuplicateObject("x".into()).to_string().contains("x"));
        assert!(CoreError::NoPendingOperation(t).to_string().contains("T3"));
        let e = CoreError::RetriesExhausted { txn: t, attempts: 11 };
        assert!(e.to_string().contains("11 attempts"));
        assert!(e.to_string().contains("T3"));
    }

    #[test]
    fn scheduler_abort_predicate() {
        let t = TxnId(7);
        let scheduler = CoreError::Aborted {
            txn: t,
            reason: AbortReason::DeadlockCycle,
        };
        assert!(scheduler.is_scheduler_abort_of(t));
        assert!(!scheduler.is_scheduler_abort_of(TxnId(8)), "different txn");
        let explicit = CoreError::Aborted {
            txn: t,
            reason: AbortReason::Explicit,
        };
        assert!(!explicit.is_scheduler_abort_of(t), "explicit aborts are not retried");
        assert!(!CoreError::UnknownTransaction(t).is_scheduler_abort_of(t));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&CoreError::UnknownTransaction(TxnId(1)));
    }
}
