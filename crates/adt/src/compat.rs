//! Compatibility tables.
//!
//! The paper specifies conflicts "via an operation compatibility table"
//! derived from the semantics of the operations (Section 3.1). Two tables
//! exist per data type: a **commutativity** table and a **recoverability**
//! table. Entries are `Yes`, `No`, or the parameter-qualified `Yes-SP`
//! (compatible only with the *Same* input Parameter) and `Yes-DP`
//! (compatible only with *Different* input Parameters).
//!
//! Rows are indexed by the **requested** operation, columns by the already
//! **executed** operation — i.e. entry `(a, b)` answers "may operation `a`
//! be invoked while an uncommitted `b` is in the log?".
//!
//! For the simulation's abstract-data-type model the two tables are merged
//! into a single [`ConflictTable`] whose entries are a three-valued
//! [`Compatibility`]; [`ConflictTable::random`] implements the paper's
//! `P_c` / `P_r` generation procedure (Section 5.5.2).

use crate::op::OpCall;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// The three-way classification of a requested operation against an
/// executed, uncommitted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Compatibility {
    /// The operations commute (Definition 2): both may proceed and no
    /// commit ordering is implied.
    Commutative,
    /// The requested operation is recoverable relative to the executed one
    /// (Definitions 1 and 3) but they do not commute: the requested
    /// operation may proceed, at the price of a commit dependency on the
    /// transaction that executed the earlier operation.
    Recoverable,
    /// Neither commutative nor recoverable: the requesting transaction must
    /// wait until the earlier transaction terminates.
    NonRecoverable,
}

impl Compatibility {
    /// `true` when the requested operation may execute immediately
    /// (commutative or recoverable).
    pub fn admits_execution(self) -> bool {
        !matches!(self, Compatibility::NonRecoverable)
    }

    /// `true` when executing the requested operation creates a commit
    /// dependency on the holder of the executed operation.
    pub fn creates_commit_dependency(self) -> bool {
        matches!(self, Compatibility::Recoverable)
    }

    /// Short label used by the experiment harness when printing tables.
    pub fn label(self) -> &'static str {
        match self {
            Compatibility::Commutative => "C",
            Compatibility::Recoverable => "R",
            Compatibility::NonRecoverable => "N",
        }
    }
}

impl fmt::Display for Compatibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Compatibility::Commutative => write!(f, "commutative"),
            Compatibility::Recoverable => write!(f, "recoverable"),
            Compatibility::NonRecoverable => write!(f, "non-recoverable"),
        }
    }
}

/// One entry of a commutativity or recoverability table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TableEntry {
    /// The pair is never compatible (under this table's relation).
    No,
    /// The pair is always compatible, independent of parameters.
    Yes,
    /// Compatible only when both operations have the **same** distinguishing
    /// parameter (the paper's `Yes-SP`).
    YesSameParam,
    /// Compatible only when the operations have **different** distinguishing
    /// parameters (the paper's `Yes-DP`).
    YesDifferentParam,
}

impl TableEntry {
    /// Resolve the entry against the distinguishing parameters of the
    /// requested and executed operations.
    pub fn holds(self, requested: &OpCall, executed: &OpCall) -> bool {
        match self {
            TableEntry::No => false,
            TableEntry::Yes => true,
            TableEntry::YesSameParam => requested.same_param(executed),
            TableEntry::YesDifferentParam => {
                // Two operations with *no* distinguishing parameter cannot
                // have "different" parameters; entries that need this case
                // use `Yes` instead.
                match (
                    requested.distinguishing_param(),
                    executed.distinguishing_param(),
                ) {
                    (Some(a), Some(b)) => a != b,
                    _ => false,
                }
            }
        }
    }

    /// The label used when rendering the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            TableEntry::No => "No",
            TableEntry::Yes => "Yes",
            TableEntry::YesSameParam => "Yes-SP",
            TableEntry::YesDifferentParam => "Yes-DP",
        }
    }
}

impl fmt::Display for TableEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A (commutativity or recoverability) table for one data type.
///
/// Entry `(requested, executed)` is stored row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompatibilityTable {
    name: String,
    op_names: Vec<&'static str>,
    entries: Vec<TableEntry>,
}

impl CompatibilityTable {
    /// Build a table from rows. `rows[i][j]` is the entry for requested
    /// operation `i` against executed operation `j`.
    ///
    /// # Panics
    ///
    /// Panics if the row/column counts do not match `op_names`.
    pub fn from_rows(
        name: impl Into<String>,
        op_names: &[&'static str],
        rows: &[&[TableEntry]],
    ) -> Self {
        let n = op_names.len();
        assert_eq!(rows.len(), n, "row count must equal operation count");
        let mut entries = Vec::with_capacity(n * n);
        for row in rows {
            assert_eq!(row.len(), n, "column count must equal operation count");
            entries.extend_from_slice(row);
        }
        CompatibilityTable {
            name: name.into(),
            op_names: op_names.to_vec(),
            entries,
        }
    }

    /// The table's display name (e.g. `"Stack commutativity"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operation kinds covered by the table.
    pub fn arity(&self) -> usize {
        self.op_names.len()
    }

    /// Names of the operations, indexed by kind.
    pub fn op_names(&self) -> &[&'static str] {
        &self.op_names
    }

    /// Raw entry for a `(requested, executed)` pair of operation kinds.
    pub fn entry(&self, requested_kind: usize, executed_kind: usize) -> TableEntry {
        let n = self.arity();
        assert!(requested_kind < n, "requested kind {requested_kind} out of range");
        assert!(executed_kind < n, "executed kind {executed_kind} out of range");
        self.entries[requested_kind * n + executed_kind]
    }

    /// Resolve the table for two concrete operation calls: does the relation
    /// (commutativity or recoverability, depending on which table this is)
    /// hold between `requested` and `executed`?
    pub fn holds(&self, requested: &OpCall, executed: &OpCall) -> bool {
        self.entry(requested.kind, executed.kind)
            .holds(requested, executed)
    }

    /// Render the table in the style of the paper (rows = requested
    /// operation, columns = executed operation).
    pub fn render(&self) -> String {
        let mut width = 10usize;
        for n in &self.op_names {
            width = width.max(n.len() + 2);
        }
        let mut out = String::new();
        out.push_str(&format!("{} (rows: requested, columns: executed)\n", self.name));
        out.push_str(&format!("{:width$}", "", width = width));
        for n in &self.op_names {
            out.push_str(&format!("{:width$}", n, width = width));
        }
        out.push('\n');
        for (i, row_name) in self.op_names.iter().enumerate() {
            out.push_str(&format!("{:width$}", row_name, width = width));
            for j in 0..self.arity() {
                out.push_str(&format!("{:width$}", self.entry(i, j).label(), width = width));
            }
            out.push('\n');
        }
        out
    }

    /// Count entries that are not `No` (used in tests and diagnostics).
    pub fn permissive_entries(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !matches!(e, TableEntry::No))
            .count()
    }
}

/// A merged conflict table mapping `(requested, executed)` directly to a
/// [`Compatibility`].
///
/// This is the representation used by [`crate::AbstractObject`] for the
/// simulation's abstract-data-type model, and is also what
/// [`classify_with_tables`] produces when combining a commutativity and a
/// recoverability table for concrete data types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictTable {
    n_ops: usize,
    entries: Vec<Compatibility>,
}

impl ConflictTable {
    /// Build a table with every entry set to `NonRecoverable`.
    pub fn all_conflicting(n_ops: usize) -> Self {
        ConflictTable {
            n_ops,
            entries: vec![Compatibility::NonRecoverable; n_ops * n_ops],
        }
    }

    /// Build a table with every entry set to `Commutative`.
    pub fn all_commutative(n_ops: usize) -> Self {
        ConflictTable {
            n_ops,
            entries: vec![Compatibility::Commutative; n_ops * n_ops],
        }
    }

    /// Build a table from explicit entries (row-major, rows = requested).
    ///
    /// # Panics
    ///
    /// Panics if `entries.len() != n_ops * n_ops`.
    pub fn from_entries(n_ops: usize, entries: Vec<Compatibility>) -> Self {
        assert_eq!(entries.len(), n_ops * n_ops, "entry count must be n_ops^2");
        ConflictTable { n_ops, entries }
    }

    /// The number of operation kinds.
    pub fn arity(&self) -> usize {
        self.n_ops
    }

    /// Entry lookup.
    pub fn get(&self, requested_kind: usize, executed_kind: usize) -> Compatibility {
        assert!(requested_kind < self.n_ops && executed_kind < self.n_ops);
        self.entries[requested_kind * self.n_ops + executed_kind]
    }

    /// Set one entry.
    pub fn set(&mut self, requested_kind: usize, executed_kind: usize, c: Compatibility) {
        assert!(requested_kind < self.n_ops && executed_kind < self.n_ops);
        self.entries[requested_kind * self.n_ops + executed_kind] = c;
    }

    /// Number of entries with the given classification.
    pub fn count(&self, c: Compatibility) -> usize {
        self.entries.iter().filter(|e| **e == c).count()
    }

    /// Generate a random table following the paper's procedure
    /// (Section 5.5.2):
    ///
    /// * `p_c / 2` non-diagonal entries are chosen at random and set to
    ///   commutative, together with their symmetric mates;
    /// * `p_r` of the remaining entries are chosen at random (uniformly)
    ///   and set to recoverable;
    /// * every other entry is non-recoverable.
    ///
    /// With `p_r = 0` the table degenerates to the commutativity-only
    /// baseline workload.
    ///
    /// # Panics
    ///
    /// Panics if `p_c` is odd, or if `p_c + p_r > n_ops^2`.
    pub fn random<R: Rng + ?Sized>(n_ops: usize, p_c: usize, p_r: usize, rng: &mut R) -> Self {
        assert!(p_c.is_multiple_of(2), "p_c must be even (entries are symmetric pairs)");
        assert!(
            p_c + p_r <= n_ops * n_ops,
            "p_c + p_r must not exceed the number of table entries"
        );
        let mut table = ConflictTable::all_conflicting(n_ops);

        // Phase 1: commutative pairs among non-diagonal entries.
        let mut off_diag_pairs: Vec<(usize, usize)> = Vec::new();
        for i in 0..n_ops {
            for j in (i + 1)..n_ops {
                off_diag_pairs.push((i, j));
            }
        }
        off_diag_pairs.shuffle(rng);
        let want_pairs = p_c / 2;
        let chosen = off_diag_pairs.len().min(want_pairs);
        for &(i, j) in off_diag_pairs.iter().take(chosen) {
            table.set(i, j, Compatibility::Commutative);
            table.set(j, i, Compatibility::Commutative);
        }

        // Phase 2: recoverable entries among everything still non-recoverable.
        let mut remaining: Vec<(usize, usize)> = Vec::new();
        for i in 0..n_ops {
            for j in 0..n_ops {
                if table.get(i, j) == Compatibility::NonRecoverable {
                    remaining.push((i, j));
                }
            }
        }
        remaining.shuffle(rng);
        for &(i, j) in remaining.iter().take(p_r.min(remaining.len())) {
            table.set(i, j, Compatibility::Recoverable);
        }
        table
    }

    /// Render the table for diagnostics.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for i in 0..self.n_ops {
            for j in 0..self.n_ops {
                out.push_str(self.get(i, j).label());
                out.push(' ');
            }
            out.push('\n');
        }
        out
    }
}

/// Combine a commutativity table and a recoverability table into a single
/// classification, exactly as the paper's object managers do: commutativity
/// is checked first, then recoverability, otherwise the pair conflicts.
pub fn classify_with_tables(
    commutativity: &CompatibilityTable,
    recoverability: &CompatibilityTable,
    requested: &OpCall,
    executed: &OpCall,
) -> Compatibility {
    if commutativity.holds(requested, executed) {
        Compatibility::Commutative
    } else if recoverability.holds(requested, executed) {
        Compatibility::Recoverable
    } else {
        Compatibility::NonRecoverable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn call(kind: usize, param: Option<i64>) -> OpCall {
        match param {
            Some(p) => OpCall::unary(kind, p),
            None => OpCall::nullary(kind),
        }
    }

    #[test]
    fn compatibility_predicates() {
        assert!(Compatibility::Commutative.admits_execution());
        assert!(Compatibility::Recoverable.admits_execution());
        assert!(!Compatibility::NonRecoverable.admits_execution());
        assert!(!Compatibility::Commutative.creates_commit_dependency());
        assert!(Compatibility::Recoverable.creates_commit_dependency());
        assert!(!Compatibility::NonRecoverable.creates_commit_dependency());
    }

    #[test]
    fn compatibility_labels_and_display() {
        assert_eq!(Compatibility::Commutative.label(), "C");
        assert_eq!(Compatibility::Recoverable.label(), "R");
        assert_eq!(Compatibility::NonRecoverable.label(), "N");
        assert_eq!(Compatibility::Recoverable.to_string(), "recoverable");
    }

    #[test]
    fn table_entry_resolution() {
        let a5 = call(0, Some(5));
        let b5 = call(1, Some(5));
        let b7 = call(1, Some(7));
        let n = call(2, None);

        assert!(!TableEntry::No.holds(&a5, &b5));
        assert!(TableEntry::Yes.holds(&a5, &b5));
        assert!(TableEntry::YesSameParam.holds(&a5, &b5));
        assert!(!TableEntry::YesSameParam.holds(&a5, &b7));
        assert!(!TableEntry::YesSameParam.holds(&a5, &n));
        assert!(TableEntry::YesDifferentParam.holds(&a5, &b7));
        assert!(!TableEntry::YesDifferentParam.holds(&a5, &b5));
        assert!(
            !TableEntry::YesDifferentParam.holds(&a5, &n),
            "a nullary operation has no parameter to differ from"
        );
    }

    #[test]
    fn table_entry_labels() {
        assert_eq!(TableEntry::No.label(), "No");
        assert_eq!(TableEntry::Yes.label(), "Yes");
        assert_eq!(TableEntry::YesSameParam.to_string(), "Yes-SP");
        assert_eq!(TableEntry::YesDifferentParam.to_string(), "Yes-DP");
    }

    fn tiny_table() -> CompatibilityTable {
        CompatibilityTable::from_rows(
            "tiny",
            &["a", "b"],
            &[
                &[TableEntry::Yes, TableEntry::No],
                &[TableEntry::YesDifferentParam, TableEntry::YesSameParam],
            ],
        )
    }

    #[test]
    fn compatibility_table_lookup() {
        let t = tiny_table();
        assert_eq!(t.arity(), 2);
        assert_eq!(t.name(), "tiny");
        assert_eq!(t.op_names(), &["a", "b"]);
        assert_eq!(t.entry(0, 0), TableEntry::Yes);
        assert_eq!(t.entry(0, 1), TableEntry::No);
        assert_eq!(t.entry(1, 0), TableEntry::YesDifferentParam);
        assert_eq!(t.entry(1, 1), TableEntry::YesSameParam);
        assert_eq!(t.permissive_entries(), 3);

        assert!(t.holds(&call(0, Some(1)), &call(0, Some(2))));
        assert!(!t.holds(&call(0, Some(1)), &call(1, Some(1))));
        assert!(t.holds(&call(1, Some(1)), &call(0, Some(2))));
        assert!(!t.holds(&call(1, Some(1)), &call(0, Some(1))));
        assert!(t.holds(&call(1, Some(3)), &call(1, Some(3))));
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn compatibility_table_rejects_bad_row_count() {
        CompatibilityTable::from_rows("bad", &["a", "b"], &[&[TableEntry::Yes, TableEntry::No]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn compatibility_table_rejects_out_of_range_kind() {
        tiny_table().entry(2, 0);
    }

    #[test]
    fn render_contains_all_labels() {
        let rendered = tiny_table().render();
        assert!(rendered.contains("tiny"));
        assert!(rendered.contains("Yes-DP"));
        assert!(rendered.contains("Yes-SP"));
        assert!(rendered.contains("No"));
    }

    #[test]
    fn conflict_table_basics() {
        let mut t = ConflictTable::all_conflicting(3);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.count(Compatibility::NonRecoverable), 9);
        t.set(0, 1, Compatibility::Commutative);
        t.set(1, 0, Compatibility::Recoverable);
        assert_eq!(t.get(0, 1), Compatibility::Commutative);
        assert_eq!(t.get(1, 0), Compatibility::Recoverable);
        assert_eq!(t.count(Compatibility::NonRecoverable), 7);

        let c = ConflictTable::all_commutative(2);
        assert_eq!(c.count(Compatibility::Commutative), 4);

        let e = ConflictTable::from_entries(
            1,
            vec![Compatibility::Recoverable],
        );
        assert_eq!(e.get(0, 0), Compatibility::Recoverable);
        assert!(!e.render().is_empty());
    }

    #[test]
    #[should_panic(expected = "entry count")]
    fn conflict_table_from_entries_validates_len() {
        ConflictTable::from_entries(2, vec![Compatibility::Commutative]);
    }

    #[test]
    fn random_table_respects_counts() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(pc, pr) in &[(0usize, 0usize), (2, 0), (4, 4), (2, 8), (4, 8), (0, 16)] {
            let t = ConflictTable::random(4, pc, pr, &mut rng);
            assert_eq!(
                t.count(Compatibility::Commutative),
                pc,
                "pc={pc} pr={pr}: commutative count"
            );
            assert_eq!(
                t.count(Compatibility::Recoverable),
                pr,
                "pc={pc} pr={pr}: recoverable count"
            );
            assert_eq!(
                t.count(Compatibility::NonRecoverable),
                16 - pc - pr,
                "pc={pc} pr={pr}: non-recoverable count"
            );
        }
    }

    #[test]
    fn random_table_commutative_entries_are_symmetric_and_off_diagonal() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let t = ConflictTable::random(4, 4, 4, &mut rng);
            for i in 0..4 {
                for j in 0..4 {
                    if t.get(i, j) == Compatibility::Commutative {
                        assert_ne!(i, j, "diagonal entries are never marked commutative");
                        assert_eq!(
                            t.get(j, i),
                            Compatibility::Commutative,
                            "commutativity must be symmetric"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn random_table_is_deterministic_for_a_seed() {
        let a = ConflictTable::random(4, 4, 4, &mut StdRng::seed_from_u64(99));
        let b = ConflictTable::random(4, 4, 4, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "p_c must be even")]
    fn random_table_rejects_odd_pc() {
        ConflictTable::random(4, 3, 0, &mut StdRng::seed_from_u64(1));
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn random_table_rejects_overfull() {
        ConflictTable::random(2, 2, 4, &mut StdRng::seed_from_u64(1));
    }

    #[test]
    fn classify_with_tables_precedence() {
        // commutativity wins over recoverability; otherwise recoverable; else conflict
        let comm = CompatibilityTable::from_rows(
            "c",
            &["a", "b"],
            &[
                &[TableEntry::Yes, TableEntry::No],
                &[TableEntry::No, TableEntry::No],
            ],
        );
        let rec = CompatibilityTable::from_rows(
            "r",
            &["a", "b"],
            &[
                &[TableEntry::Yes, TableEntry::Yes],
                &[TableEntry::No, TableEntry::No],
            ],
        );
        let a = call(0, None);
        let b = call(1, None);
        assert_eq!(
            classify_with_tables(&comm, &rec, &a, &a),
            Compatibility::Commutative
        );
        assert_eq!(
            classify_with_tables(&comm, &rec, &a, &b),
            Compatibility::Recoverable
        );
        assert_eq!(
            classify_with_tables(&comm, &rec, &b, &a),
            Compatibility::NonRecoverable
        );
    }
}
