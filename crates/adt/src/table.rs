//! The `Table` data type: a keyed store with insert / delete / lookup /
//! size / modify (paper Section 3.2.4, Tables VII and VIII).
//!
//! `size` is the interesting operation: it does not commute with `insert`
//! or `delete` (they change the count it reports), yet `insert` and `delete`
//! **are recoverable relative to `size`** — their return values depend only
//! on key presence, which `size` never changes. The converse does not hold:
//! a `size` requested while an uncommitted `insert`/`delete` is in the log
//! would observe their effects, so it must wait.

use crate::compat::{CompatibilityTable, TableEntry};
use crate::op::{AdtOp, OpCall, OpResult};
use crate::spec::AdtSpec;
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// A keyed table of `(key, item)` pairs with unique keys.
///
/// Named `TableObject` to avoid clashing with the ubiquitous "table" noun in
/// database code.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableObject {
    entries: BTreeMap<Value, Value>,
}

impl TableObject {
    /// An empty table.
    pub fn new() -> Self {
        TableObject {
            entries: BTreeMap::new(),
        }
    }

    /// Build a table from `(key, item)` pairs (later duplicates win).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Value, Value)>) -> Self {
        TableObject {
            entries: pairs.into_iter().collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Direct state accessor (not the transactional `lookup`).
    pub fn get(&self, key: &Value) -> Option<&Value> {
        self.entries.get(key)
    }
}

/// Operations on a [`TableObject`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableOp {
    /// Insert a new `(key, item)` pair. Fails if the key is already present.
    Insert(Value, Value),
    /// Delete the pair with the given key. Fails if the key is absent.
    Delete(Value),
    /// Return the item associated with the key, or `null` if absent.
    Lookup(Value),
    /// Return the number of entries.
    Size,
    /// Replace the item associated with the key. Fails if the key is absent.
    Modify(Value, Value),
}

/// Kind index of `insert`.
pub const TABLE_INSERT: usize = 0;
/// Kind index of `delete`.
pub const TABLE_DELETE: usize = 1;
/// Kind index of `lookup`.
pub const TABLE_LOOKUP: usize = 2;
/// Kind index of `size`.
pub const TABLE_SIZE: usize = 3;
/// Kind index of `modify`.
pub const TABLE_MODIFY: usize = 4;

const TABLE_OP_NAMES: &[&str] = &["insert", "delete", "lookup", "size", "modify"];

impl AdtOp for TableOp {
    const KINDS: usize = 5;

    fn kind(&self) -> usize {
        match self {
            TableOp::Insert(_, _) => TABLE_INSERT,
            TableOp::Delete(_) => TABLE_DELETE,
            TableOp::Lookup(_) => TABLE_LOOKUP,
            TableOp::Size => TABLE_SIZE,
            TableOp::Modify(_, _) => TABLE_MODIFY,
        }
    }

    fn kind_name(&self) -> &'static str {
        TABLE_OP_NAMES[self.kind()]
    }

    fn kind_names() -> &'static [&'static str] {
        TABLE_OP_NAMES
    }

    fn to_call(&self) -> OpCall {
        match self {
            TableOp::Insert(k, v) => OpCall::binary(TABLE_INSERT, k.clone(), v.clone()),
            TableOp::Delete(k) => OpCall::unary(TABLE_DELETE, k.clone()),
            TableOp::Lookup(k) => OpCall::unary(TABLE_LOOKUP, k.clone()),
            TableOp::Size => OpCall::nullary(TABLE_SIZE),
            TableOp::Modify(k, v) => OpCall::binary(TABLE_MODIFY, k.clone(), v.clone()),
        }
    }

    fn from_call(call: &OpCall) -> Option<Self> {
        match call.kind {
            TABLE_INSERT => Some(TableOp::Insert(
                call.params.first()?.clone(),
                call.params.get(1)?.clone(),
            )),
            TABLE_DELETE => Some(TableOp::Delete(call.params.first()?.clone())),
            TABLE_LOOKUP => Some(TableOp::Lookup(call.params.first()?.clone())),
            TABLE_SIZE => Some(TableOp::Size),
            TABLE_MODIFY => Some(TableOp::Modify(
                call.params.first()?.clone(),
                call.params.get(1)?.clone(),
            )),
            _ => None,
        }
    }

    fn is_readonly(&self) -> bool {
        matches!(self, TableOp::Lookup(_) | TableOp::Size)
    }
}

impl AdtSpec for TableObject {
    type Op = TableOp;
    const TYPE_NAME: &'static str = "table";

    fn apply(&mut self, op: &Self::Op) -> OpResult {
        match op {
            TableOp::Insert(k, v) => {
                if self.entries.contains_key(k) {
                    OpResult::Failure
                } else {
                    self.entries.insert(k.clone(), v.clone());
                    OpResult::Success
                }
            }
            TableOp::Delete(k) => {
                if self.entries.remove(k).is_some() {
                    OpResult::Success
                } else {
                    OpResult::Failure
                }
            }
            TableOp::Lookup(k) => match self.entries.get(k) {
                Some(v) => OpResult::Value(v.clone()),
                None => OpResult::Null,
            },
            TableOp::Size => OpResult::Value(Value::Int(self.entries.len() as i64)),
            TableOp::Modify(k, v) => {
                if let Some(slot) = self.entries.get_mut(k) {
                    *slot = v.clone();
                    OpResult::Success
                } else {
                    OpResult::Failure
                }
            }
        }
    }

    /// Table VII — commutativity for Table.
    ///
    /// | requested \ executed | insert | delete | lookup | size | modify |
    /// |---|---|---|---|---|---|
    /// | insert | Yes-DP | Yes-DP | Yes-DP | No | Yes-DP |
    /// | delete | Yes-DP | Yes-DP | Yes-DP | No | Yes-DP |
    /// | lookup | Yes-DP | Yes-DP | Yes | Yes | Yes-DP |
    /// | size   | No | No | Yes | Yes | Yes |
    /// | modify | Yes-DP | Yes-DP | Yes-DP | Yes | Yes-DP |
    fn commutativity_table() -> &'static CompatibilityTable {
        static TABLE: OnceLock<CompatibilityTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            use TableEntry::*;
            CompatibilityTable::from_rows(
                "Table commutativity (Table VII)",
                TABLE_OP_NAMES,
                &[
                    &[YesDifferentParam, YesDifferentParam, YesDifferentParam, No, YesDifferentParam],
                    &[YesDifferentParam, YesDifferentParam, YesDifferentParam, No, YesDifferentParam],
                    &[YesDifferentParam, YesDifferentParam, Yes, Yes, YesDifferentParam],
                    &[No, No, Yes, Yes, Yes],
                    &[YesDifferentParam, YesDifferentParam, YesDifferentParam, Yes, YesDifferentParam],
                ],
            )
        })
    }

    /// Table VIII — recoverability for Table.
    ///
    /// | requested \ executed | insert | delete | lookup | size | modify |
    /// |---|---|---|---|---|---|
    /// | insert | Yes-DP | Yes-DP | Yes | Yes | Yes |
    /// | delete | Yes-DP | Yes-DP | Yes | Yes | Yes |
    /// | lookup | Yes-DP | Yes-DP | Yes | Yes | Yes-DP |
    /// | size   | No | No | Yes | Yes | Yes |
    /// | modify | Yes-DP | Yes-DP | Yes | Yes | Yes |
    fn recoverability_table() -> &'static CompatibilityTable {
        static TABLE: OnceLock<CompatibilityTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            use TableEntry::*;
            CompatibilityTable::from_rows(
                "Table recoverability (Table VIII)",
                TABLE_OP_NAMES,
                &[
                    &[YesDifferentParam, YesDifferentParam, Yes, Yes, Yes],
                    &[YesDifferentParam, YesDifferentParam, Yes, Yes, Yes],
                    &[YesDifferentParam, YesDifferentParam, Yes, Yes, YesDifferentParam],
                    &[No, No, Yes, Yes, Yes],
                    &[YesDifferentParam, YesDifferentParam, Yes, Yes, Yes],
                ],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{check_commutative, check_recoverable, verify_tables};
    use crate::Compatibility;
    use proptest::prelude::*;

    fn probe_states() -> Vec<TableObject> {
        vec![
            TableObject::new(),
            TableObject::from_pairs([(Value::Int(1), Value::Int(10))]),
            TableObject::from_pairs([
                (Value::Int(1), Value::Int(10)),
                (Value::Int(2), Value::Int(20)),
            ]),
            TableObject::from_pairs([
                (Value::str("a"), Value::Int(1)),
                (Value::str("b"), Value::Int(2)),
                (Value::Int(3), Value::Int(30)),
            ]),
        ]
    }

    fn probe_ops() -> Vec<TableOp> {
        vec![
            TableOp::Insert(Value::Int(1), Value::Int(100)),
            TableOp::Insert(Value::Int(5), Value::Int(500)),
            TableOp::Delete(Value::Int(1)),
            TableOp::Delete(Value::Int(9)),
            TableOp::Lookup(Value::Int(1)),
            TableOp::Lookup(Value::Int(9)),
            TableOp::Size,
            TableOp::Modify(Value::Int(1), Value::Int(111)),
            TableOp::Modify(Value::Int(9), Value::Int(999)),
        ]
    }

    #[test]
    fn table_semantics() {
        let mut t = TableObject::new();
        assert!(t.is_empty());
        assert_eq!(t.apply(&TableOp::Size), OpResult::Value(Value::Int(0)));
        assert_eq!(
            t.apply(&TableOp::Insert(Value::Int(1), Value::Int(10))),
            OpResult::Success
        );
        assert_eq!(
            t.apply(&TableOp::Insert(Value::Int(1), Value::Int(99))),
            OpResult::Failure,
            "duplicate key insert fails"
        );
        assert_eq!(
            t.apply(&TableOp::Lookup(Value::Int(1))),
            OpResult::Value(Value::Int(10))
        );
        assert_eq!(t.apply(&TableOp::Lookup(Value::Int(2))), OpResult::Null);
        assert_eq!(
            t.apply(&TableOp::Modify(Value::Int(1), Value::Int(11))),
            OpResult::Success
        );
        assert_eq!(t.get(&Value::Int(1)), Some(&Value::Int(11)));
        assert_eq!(
            t.apply(&TableOp::Modify(Value::Int(2), Value::Int(22))),
            OpResult::Failure
        );
        assert_eq!(t.apply(&TableOp::Size), OpResult::Value(Value::Int(1)));
        assert_eq!(t.apply(&TableOp::Delete(Value::Int(1))), OpResult::Success);
        assert_eq!(t.apply(&TableOp::Delete(Value::Int(1))), OpResult::Failure);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn table_vii_commutativity_entries() {
        let t = TableObject::commutativity_table();
        assert_eq!(t.entry(TABLE_INSERT, TABLE_SIZE), TableEntry::No);
        assert_eq!(t.entry(TABLE_SIZE, TABLE_INSERT), TableEntry::No);
        assert_eq!(t.entry(TABLE_SIZE, TABLE_DELETE), TableEntry::No);
        assert_eq!(t.entry(TABLE_SIZE, TABLE_LOOKUP), TableEntry::Yes);
        assert_eq!(t.entry(TABLE_SIZE, TABLE_MODIFY), TableEntry::Yes);
        assert_eq!(t.entry(TABLE_LOOKUP, TABLE_LOOKUP), TableEntry::Yes);
        assert_eq!(t.entry(TABLE_INSERT, TABLE_INSERT), TableEntry::YesDifferentParam);
        assert_eq!(t.entry(TABLE_MODIFY, TABLE_SIZE), TableEntry::Yes);
    }

    #[test]
    fn table_viii_recoverability_entries() {
        let t = TableObject::recoverability_table();
        // The paper's headline asymmetry: insert/delete are recoverable
        // relative to size, size is not recoverable relative to them.
        assert_eq!(t.entry(TABLE_INSERT, TABLE_SIZE), TableEntry::Yes);
        assert_eq!(t.entry(TABLE_DELETE, TABLE_SIZE), TableEntry::Yes);
        assert_eq!(t.entry(TABLE_SIZE, TABLE_INSERT), TableEntry::No);
        assert_eq!(t.entry(TABLE_SIZE, TABLE_DELETE), TableEntry::No);
        assert_eq!(t.entry(TABLE_INSERT, TABLE_MODIFY), TableEntry::Yes);
        assert_eq!(t.entry(TABLE_MODIFY, TABLE_MODIFY), TableEntry::Yes);
        assert_eq!(t.entry(TABLE_LOOKUP, TABLE_MODIFY), TableEntry::YesDifferentParam);
    }

    #[test]
    fn size_asymmetry_is_captured_by_classification() {
        let insert = TableOp::Insert(Value::Int(7), Value::Int(70));
        let delete = TableOp::Delete(Value::Int(7));
        assert_eq!(
            TableObject::classify(&insert, &TableOp::Size),
            Compatibility::Recoverable
        );
        assert_eq!(
            TableObject::classify(&delete, &TableOp::Size),
            Compatibility::Recoverable
        );
        assert_eq!(
            TableObject::classify(&TableOp::Size, &insert),
            Compatibility::NonRecoverable
        );
        assert_eq!(
            TableObject::classify(&TableOp::Size, &delete),
            Compatibility::NonRecoverable
        );
        assert_eq!(
            TableObject::classify(&TableOp::Size, &TableOp::Size),
            Compatibility::Commutative
        );
    }

    #[test]
    fn tables_are_sound_wrt_definitions() {
        let violations = verify_tables::<TableObject>(&probe_states(), &probe_ops());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn conservative_entries_are_justified() {
        let states = probe_states();
        // size really is unrecoverable relative to insert
        assert!(!check_recoverable(
            &states,
            &TableOp::Size,
            &TableOp::Insert(Value::Int(42), Value::Int(0))
        ));
        // insert of the same key is genuinely non-commutative
        assert!(!check_commutative(
            &states,
            &TableOp::Insert(Value::Int(5), Value::Int(1)),
            &TableOp::Insert(Value::Int(5), Value::Int(2))
        ));
    }

    #[test]
    fn op_call_round_trip() {
        for op in probe_ops() {
            let call = op.to_call();
            assert_eq!(TableOp::from_call(&call), Some(op.clone()));
            assert_eq!(call.kind, op.kind());
        }
        assert_eq!(TableOp::from_call(&OpCall::nullary(11)), None);
        assert_eq!(TableOp::from_call(&OpCall::unary(TABLE_INSERT, 1)), None);
        assert_eq!(TableOp::Size.kind_name(), "size");
    }

    fn arb_key() -> impl Strategy<Value = Value> {
        (0i64..6).prop_map(Value::Int)
    }

    fn arb_table() -> impl Strategy<Value = TableObject> {
        proptest::collection::btree_map(arb_key(), (0i64..100).prop_map(Value::Int), 0..5)
            .prop_map(|m| TableObject { entries: m })
    }

    fn arb_op() -> impl Strategy<Value = TableOp> {
        prop_oneof![
            (arb_key(), 0i64..100).prop_map(|(k, v)| TableOp::Insert(k, Value::Int(v))),
            arb_key().prop_map(TableOp::Delete),
            arb_key().prop_map(TableOp::Lookup),
            Just(TableOp::Size),
            (arb_key(), 0i64..100).prop_map(|(k, v)| TableOp::Modify(k, Value::Int(v))),
        ]
    }

    proptest! {
        #[test]
        fn prop_tables_sound_on_random_states(
            states in proptest::collection::vec(arb_table(), 1..4),
            ops in proptest::collection::vec(arb_op(), 1..7),
        ) {
            let violations = verify_tables::<TableObject>(&states, &ops);
            prop_assert!(violations.is_empty(), "{violations:?}");
        }

        #[test]
        fn prop_size_counts_inserts(table in arb_table(), k in 10i64..20) {
            let mut t = table;
            let before = match t.apply(&TableOp::Size) {
                OpResult::Value(Value::Int(n)) => n,
                other => panic!("unexpected size result {other:?}"),
            };
            t.apply(&TableOp::Insert(Value::Int(k), Value::Int(0)));
            prop_assert_eq!(t.apply(&TableOp::Size), OpResult::Value(Value::Int(before + 1)));
        }
    }
}
