//! Definition-level semantics checkers.
//!
//! These functions evaluate the paper's formal definitions directly over a
//! set of probe states:
//!
//! * **Definition 1** (`o2` recoverable relative to `o1`): for all states
//!   `s`, `return(o2, state(o1, s)) = return(o2, s)`.
//! * **Definition 2** (commutativity): for all states `s`, the final state
//!   is independent of execution order and each operation returns the same
//!   value in either order.
//! * **Definition 3 / Lemma 2** (recoverability relative to a *sequence* of
//!   uncommitted operations): the return value of the later operation is the
//!   same for every subsequence of the uncommitted prefix. Lemma 2 proves
//!   that pairwise recoverability implies sequence recoverability; the
//!   property tests in this crate exercise that implication on concrete data
//!   types.
//!
//! Because the definitions quantify over *all* states, checkers take a slice
//! of probe states: a `true` answer means "holds for every probe state".
//! The unit/property tests use these checkers in the sound direction — every
//! `Yes` entry in a static table must hold on every sampled state — while
//! `No` entries are allowed to be conservative.

use crate::op::OpResult;
use crate::spec::AdtSpec;

/// Evaluate Definition 1: is `later` recoverable relative to `earlier`,
/// judged over the given probe states?
///
/// Returns `true` iff for every probe state `s`,
/// `return(later, state(earlier, s)) == return(later, s)`.
pub fn check_recoverable<A: AdtSpec>(states: &[A], later: &A::Op, earlier: &A::Op) -> bool {
    states.iter().all(|s| {
        // return(later, state(earlier, s))
        let mut with_earlier = s.clone();
        let _ = with_earlier.apply(earlier);
        let r_with = with_earlier.apply(later);
        // return(later, s)
        let mut without = s.clone();
        let r_without = without.apply(later);
        r_with == r_without
    })
}

/// Evaluate Definition 2: do `o1` and `o2` commute, judged over the given
/// probe states?
///
/// Requires (for every probe state): identical final state regardless of
/// order, and each operation returns the same value in either order.
pub fn check_commutative<A: AdtSpec>(states: &[A], o1: &A::Op, o2: &A::Op) -> bool {
    states.iter().all(|s| {
        let mut s12 = s.clone();
        let r1_first = s12.apply(o1);
        let r2_second = s12.apply(o2);

        let mut s21 = s.clone();
        let r2_first = s21.apply(o2);
        let r1_second = s21.apply(o1);

        s12 == s21 && r1_first == r1_second && r2_first == r2_second
    })
}

/// Evaluate Definition 3 directly: is `later` recoverable relative to the
/// *sequence* of uncommitted operations `uncommitted` (listed in execution
/// order), judged over the given probe states?
///
/// The definition requires the return value of `later` to be identical for
/// **every subsequence** of the uncommitted operations (any subset may abort
/// and vanish from the log). This is exponential in the sequence length and
/// is therefore only used in tests with short sequences.
pub fn check_recoverable_to_sequence<A: AdtSpec>(
    states: &[A],
    later: &A::Op,
    uncommitted: &[A::Op],
) -> bool {
    let n = uncommitted.len();
    assert!(n <= 16, "subsequence enumeration is exponential; keep sequences short");
    states.iter().all(|s| {
        let reference = return_after_subsequence(s, later, uncommitted, (1u32 << n) - 1);
        (0..(1u32 << n)).all(|mask| {
            return_after_subsequence(s, later, uncommitted, mask) == reference
        })
    })
}

fn return_after_subsequence<A: AdtSpec>(
    base: &A,
    later: &A::Op,
    uncommitted: &[A::Op],
    mask: u32,
) -> OpResult {
    let mut state = base.clone();
    for (i, op) in uncommitted.iter().enumerate() {
        if mask & (1 << i) != 0 {
            let _ = state.apply(op);
        }
    }
    state.apply(later)
}

/// A violation found by [`verify_tables`]: the static table claimed a
/// compatibility that the definitions refute on at least one probe state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemanticsViolation {
    /// The data type name.
    pub type_name: &'static str,
    /// Debug rendering of the requested operation.
    pub requested: String,
    /// Debug rendering of the executed operation.
    pub executed: String,
    /// What the table claimed.
    pub claimed: crate::Compatibility,
}

impl std::fmt::Display for SemanticsViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: table claims {} for requested {} against executed {}, but the definition fails",
            self.type_name, self.claimed, self.requested, self.executed
        )
    }
}

/// Verify that a data type's static tables are *sound* with respect to the
/// formal definitions over the given probe states and operations: every pair
/// classified `Commutative` must satisfy Definition 2 and every pair
/// classified `Recoverable` must satisfy Definition 1.
///
/// Returns the list of violations (empty when the tables are sound).
pub fn verify_tables<A: AdtSpec>(states: &[A], ops: &[A::Op]) -> Vec<SemanticsViolation> {
    use crate::Compatibility;
    let mut violations = Vec::new();
    for requested in ops {
        for executed in ops {
            match A::classify(requested, executed) {
                Compatibility::Commutative => {
                    if !check_commutative(states, requested, executed) {
                        violations.push(SemanticsViolation {
                            type_name: A::TYPE_NAME,
                            requested: format!("{requested:?}"),
                            executed: format!("{executed:?}"),
                            claimed: Compatibility::Commutative,
                        });
                    }
                }
                Compatibility::Recoverable => {
                    if !check_recoverable(states, requested, executed) {
                        violations.push(SemanticsViolation {
                            type_name: A::TYPE_NAME,
                            requested: format!("{requested:?}"),
                            executed: format!("{executed:?}"),
                            claimed: Compatibility::Recoverable,
                        });
                    }
                }
                Compatibility::NonRecoverable => {
                    // Conservative entries are always sound.
                }
            }
        }
    }
    violations
}

/// Check Lemma 1 on concrete operations: commutativity implies
/// recoverability in both directions (over the probe states).
pub fn check_lemma1<A: AdtSpec>(states: &[A], o1: &A::Op, o2: &A::Op) -> bool {
    if !check_commutative(states, o1, o2) {
        return true; // vacuously true
    }
    check_recoverable(states, o1, o2) && check_recoverable(states, o2, o1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{Page, PageOp};
    use crate::stack::{Stack, StackOp};
    use crate::value::Value;

    fn stack_states() -> Vec<Stack> {
        vec![
            Stack::new(),
            Stack::from_values(vec![Value::Int(1)]),
            Stack::from_values(vec![Value::Int(1), Value::Int(2)]),
            Stack::from_values(vec![Value::Int(2), Value::Int(2), Value::Int(3)]),
        ]
    }

    #[test]
    fn push_is_recoverable_relative_to_push() {
        let states = stack_states();
        let p1 = StackOp::Push(Value::Int(10));
        let p2 = StackOp::Push(Value::Int(20));
        assert!(check_recoverable(&states, &p2, &p1));
        assert!(check_recoverable(&states, &p1, &p2));
        assert!(
            !check_commutative(&states, &p1, &p2),
            "pushes with different parameters do not commute"
        );
    }

    #[test]
    fn pop_is_not_recoverable_relative_to_push() {
        let states = stack_states();
        let push = StackOp::Push(Value::Int(10));
        let pop = StackOp::Pop;
        assert!(!check_recoverable(&states, &pop, &push));
        // but push *is* recoverable relative to pop
        assert!(check_recoverable(&states, &push, &pop));
    }

    #[test]
    fn reads_commute_on_pages() {
        let states = vec![Page::new(), Page::with_value(Value::Int(5))];
        assert!(check_commutative(&states, &PageOp::Read, &PageOp::Read));
        assert!(!check_commutative(
            &states,
            &PageOp::Read,
            &PageOp::Write(Value::Int(9))
        ));
        assert!(check_recoverable(
            &states,
            &PageOp::Write(Value::Int(9)),
            &PageOp::Read
        ));
        assert!(!check_recoverable(
            &states,
            &PageOp::Read,
            &PageOp::Write(Value::Int(9))
        ));
    }

    #[test]
    fn sequence_recoverability_for_pushes() {
        // Definition 3: a push is recoverable relative to any sequence of
        // uncommitted pushes/pops (its return value is always "ok").
        let states = stack_states();
        let later = StackOp::Push(Value::Int(99));
        let uncommitted = vec![
            StackOp::Push(Value::Int(1)),
            StackOp::Pop,
            StackOp::Push(Value::Int(2)),
        ];
        assert!(check_recoverable_to_sequence(&states, &later, &uncommitted));

        // ... but a pop is not recoverable relative to a sequence containing
        // a push (its return value depends on whether the push survives).
        let later = StackOp::Pop;
        assert!(!check_recoverable_to_sequence(
            &states,
            &later,
            &[StackOp::Push(Value::Int(1))]
        ));
    }

    #[test]
    fn lemma1_holds_for_stack_and_page_ops() {
        let states = stack_states();
        let ops = [
            StackOp::Push(Value::Int(1)),
            StackOp::Push(Value::Int(2)),
            StackOp::Pop,
            StackOp::Top,
        ];
        for a in &ops {
            for b in &ops {
                assert!(check_lemma1(&states, a, b), "lemma 1 violated for {a:?},{b:?}");
            }
        }
    }

    #[test]
    fn verify_tables_passes_for_stack() {
        let states = stack_states();
        let ops = vec![
            StackOp::Push(Value::Int(1)),
            StackOp::Push(Value::Int(2)),
            StackOp::Pop,
            StackOp::Top,
        ];
        let violations = verify_tables::<Stack>(&states, &ops);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn violation_display_is_informative() {
        let v = SemanticsViolation {
            type_name: "stack",
            requested: "Pop".into(),
            executed: "Push(1)".into(),
            claimed: crate::Compatibility::Recoverable,
        };
        let s = v.to_string();
        assert!(s.contains("stack"));
        assert!(s.contains("Pop"));
        assert!(s.contains("recoverable"));
    }
}
