//! The `Page` data type: the traditional read/write object (paper
//! Section 3.2.1, Tables I and II).
//!
//! Under a commutativity-only conflict definition, two operations conflict
//! whenever one of them is a write — three of the four pairs conflict. With
//! recoverability, only `(read, write)` — a read requested while an
//! uncommitted write is in the log — remains a conflict: a write requested
//! after a read or after another write returns `ok` regardless, so it is
//! recoverable. "Even for the read/write model of transactions, the
//! potential for parallelism increases under recoverability semantics."

use crate::compat::{CompatibilityTable, TableEntry};
use crate::op::{AdtOp, OpCall, OpResult};
use crate::spec::AdtSpec;
use crate::value::Value;
use std::sync::OnceLock;

/// A single read/write object holding one [`Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    value: Value,
}

impl Page {
    /// A fresh page holding [`Value::Null`].
    pub fn new() -> Self {
        Page { value: Value::Null }
    }

    /// A page initialised with the given value.
    pub fn with_value(value: Value) -> Self {
        Page { value }
    }

    /// The current contents of the page.
    pub fn value(&self) -> &Value {
        &self.value
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

/// Operations on a [`Page`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageOp {
    /// Return the page contents.
    Read,
    /// Replace the page contents; returns `ok`.
    Write(Value),
}

/// Kind index of `read`.
pub const PAGE_READ: usize = 0;
/// Kind index of `write`.
pub const PAGE_WRITE: usize = 1;

const PAGE_OP_NAMES: &[&str] = &["read", "write"];

impl AdtOp for PageOp {
    const KINDS: usize = 2;

    fn kind(&self) -> usize {
        match self {
            PageOp::Read => PAGE_READ,
            PageOp::Write(_) => PAGE_WRITE,
        }
    }

    fn kind_name(&self) -> &'static str {
        PAGE_OP_NAMES[self.kind()]
    }

    fn kind_names() -> &'static [&'static str] {
        PAGE_OP_NAMES
    }

    fn to_call(&self) -> OpCall {
        match self {
            PageOp::Read => OpCall::nullary(PAGE_READ),
            PageOp::Write(v) => OpCall::unary(PAGE_WRITE, v.clone()),
        }
    }

    fn from_call(call: &OpCall) -> Option<Self> {
        match call.kind {
            PAGE_READ => Some(PageOp::Read),
            PAGE_WRITE => Some(PageOp::Write(call.params.first()?.clone())),
            _ => None,
        }
    }

    fn is_readonly(&self) -> bool {
        matches!(self, PageOp::Read)
    }
}

impl AdtSpec for Page {
    type Op = PageOp;
    const TYPE_NAME: &'static str = "page";

    fn apply(&mut self, op: &Self::Op) -> OpResult {
        match op {
            PageOp::Read => OpResult::Value(self.value.clone()),
            PageOp::Write(v) => {
                self.value = v.clone();
                OpResult::Ok
            }
        }
    }

    /// Table I — commutativity for Page.
    ///
    /// | requested \ executed | read | write |
    /// |---|---|---|
    /// | read  | Yes | No |
    /// | write | No  | Yes-SP |
    fn commutativity_table() -> &'static CompatibilityTable {
        static TABLE: OnceLock<CompatibilityTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            use TableEntry::*;
            CompatibilityTable::from_rows(
                "Page commutativity (Table I)",
                PAGE_OP_NAMES,
                &[&[Yes, No], &[No, YesSameParam]],
            )
        })
    }

    /// Table II — recoverability for Page.
    ///
    /// | requested \ executed | read | write |
    /// |---|---|---|
    /// | read  | Yes | No |
    /// | write | Yes | Yes |
    fn recoverability_table() -> &'static CompatibilityTable {
        static TABLE: OnceLock<CompatibilityTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            use TableEntry::*;
            CompatibilityTable::from_rows(
                "Page recoverability (Table II)",
                PAGE_OP_NAMES,
                &[&[Yes, No], &[Yes, Yes]],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{check_commutative, check_recoverable, verify_tables};
    use crate::Compatibility;
    use proptest::prelude::*;

    fn probe_states() -> Vec<Page> {
        vec![
            Page::new(),
            Page::with_value(Value::Int(0)),
            Page::with_value(Value::Int(42)),
            Page::with_value(Value::str("payload")),
        ]
    }

    #[test]
    fn read_and_write_semantics() {
        let mut p = Page::default();
        assert_eq!(p.apply(&PageOp::Read), OpResult::Value(Value::Null));
        assert_eq!(p.apply(&PageOp::Write(Value::Int(7))), OpResult::Ok);
        assert_eq!(p.apply(&PageOp::Read), OpResult::Value(Value::Int(7)));
        assert_eq!(p.value(), &Value::Int(7));
    }

    #[test]
    fn table_i_commutativity_entries() {
        let t = Page::commutativity_table();
        assert_eq!(t.entry(PAGE_READ, PAGE_READ), TableEntry::Yes);
        assert_eq!(t.entry(PAGE_READ, PAGE_WRITE), TableEntry::No);
        assert_eq!(t.entry(PAGE_WRITE, PAGE_READ), TableEntry::No);
        assert_eq!(t.entry(PAGE_WRITE, PAGE_WRITE), TableEntry::YesSameParam);
    }

    #[test]
    fn table_ii_recoverability_entries() {
        let t = Page::recoverability_table();
        assert_eq!(t.entry(PAGE_READ, PAGE_READ), TableEntry::Yes);
        assert_eq!(t.entry(PAGE_READ, PAGE_WRITE), TableEntry::No);
        assert_eq!(t.entry(PAGE_WRITE, PAGE_READ), TableEntry::Yes);
        assert_eq!(t.entry(PAGE_WRITE, PAGE_WRITE), TableEntry::Yes);
    }

    #[test]
    fn only_read_after_write_conflicts_under_recoverability() {
        // The paper: "with recoverability ... the only pair of operations
        // considered conflicting is (read, write)".
        let read = PageOp::Read;
        let write = PageOp::Write(Value::Int(1));
        let write2 = PageOp::Write(Value::Int(2));
        assert_eq!(Page::classify(&read, &read), Compatibility::Commutative);
        assert_eq!(Page::classify(&read, &write), Compatibility::NonRecoverable);
        assert_eq!(Page::classify(&write, &read), Compatibility::Recoverable);
        assert_eq!(Page::classify(&write, &write2), Compatibility::Recoverable);
        assert_eq!(
            Page::classify(&write, &write),
            Compatibility::Commutative,
            "identical writes commute (Yes-SP)"
        );
    }

    #[test]
    fn tables_are_sound_wrt_definitions() {
        let states = probe_states();
        let ops = vec![
            PageOp::Read,
            PageOp::Write(Value::Int(1)),
            PageOp::Write(Value::Int(2)),
            PageOp::Write(Value::str("x")),
        ];
        let violations = verify_tables::<Page>(&states, &ops);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn definition_checks_match_expectations() {
        let states = probe_states();
        let w1 = PageOp::Write(Value::Int(1));
        let w2 = PageOp::Write(Value::Int(2));
        assert!(check_recoverable(&states, &w1, &w2));
        assert!(check_recoverable(&states, &w2, &w1));
        assert!(!check_commutative(&states, &w1, &w2));
        assert!(check_commutative(&states, &PageOp::Read, &PageOp::Read));
        assert!(!check_recoverable(&states, &PageOp::Read, &w1));
    }

    #[test]
    fn op_call_round_trip() {
        for op in [PageOp::Read, PageOp::Write(Value::Int(3))] {
            let call = op.to_call();
            assert_eq!(PageOp::from_call(&call), Some(op.clone()));
            assert_eq!(call.kind, op.kind());
        }
        assert_eq!(PageOp::from_call(&OpCall::nullary(9)), None);
        assert_eq!(
            PageOp::from_call(&OpCall::nullary(PAGE_WRITE)),
            None,
            "write requires a parameter"
        );
        assert_eq!(PageOp::Read.kind_name(), "read");
        assert_eq!(PageOp::Write(Value::Null).kind_name(), "write");
    }

    proptest! {
        #[test]
        fn prop_write_then_read_returns_written(v in -1000i64..1000) {
            let mut p = Page::new();
            p.apply(&PageOp::Write(Value::Int(v)));
            prop_assert_eq!(p.apply(&PageOp::Read), OpResult::Value(Value::Int(v)));
        }

        #[test]
        fn prop_write_recoverable_wrt_any_page_op(
            initial in -50i64..50,
            earlier_is_write in proptest::bool::ANY,
            earlier_val in -50i64..50,
            later_val in -50i64..50,
        ) {
            let states = vec![Page::with_value(Value::Int(initial))];
            let earlier = if earlier_is_write {
                PageOp::Write(Value::Int(earlier_val))
            } else {
                PageOp::Read
            };
            let later = PageOp::Write(Value::Int(later_val));
            prop_assert!(check_recoverable(&states, &later, &earlier));
        }

        #[test]
        fn prop_read_not_recoverable_after_changing_write(
            initial in -50i64..50,
            written in -50i64..50,
        ) {
            prop_assume!(initial != written);
            let states = vec![Page::with_value(Value::Int(initial))];
            prop_assert!(!check_recoverable(
                &states,
                &PageOp::Read,
                &PageOp::Write(Value::Int(written))
            ));
        }
    }
}
