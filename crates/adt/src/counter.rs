//! The `Counter` data type: increment / decrement / read.
//!
//! An extension beyond the paper's four examples, included because counters
//! (escrow-style quantities, statistics, reference counts) are the classic
//! "hot spot" object in transaction processing. Increments and decrements
//! commute with each other; a read does not commute with them, but an
//! increment or decrement requested while an uncommitted read is in the log
//! is recoverable (its return value is always `ok`).

use crate::compat::{CompatibilityTable, TableEntry};
use crate::op::{AdtOp, OpCall, OpResult};
use crate::spec::AdtSpec;
use crate::value::Value;
use std::sync::OnceLock;

/// An unbounded signed counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter {
    value: i64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter { value: 0 }
    }

    /// A counter starting at the given value.
    pub fn with_value(value: i64) -> Self {
        Counter { value }
    }

    /// The current count.
    pub fn value(&self) -> i64 {
        self.value
    }
}

/// Operations on a [`Counter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CounterOp {
    /// Add the given amount; returns `ok`.
    Increment(i64),
    /// Subtract the given amount; returns `ok`.
    Decrement(i64),
    /// Return the current count.
    Read,
}

/// Kind index of `increment`.
pub const COUNTER_INC: usize = 0;
/// Kind index of `decrement`.
pub const COUNTER_DEC: usize = 1;
/// Kind index of `read`.
pub const COUNTER_READ: usize = 2;

const COUNTER_OP_NAMES: &[&str] = &["increment", "decrement", "read"];

impl AdtOp for CounterOp {
    const KINDS: usize = 3;

    fn kind(&self) -> usize {
        match self {
            CounterOp::Increment(_) => COUNTER_INC,
            CounterOp::Decrement(_) => COUNTER_DEC,
            CounterOp::Read => COUNTER_READ,
        }
    }

    fn kind_name(&self) -> &'static str {
        COUNTER_OP_NAMES[self.kind()]
    }

    fn kind_names() -> &'static [&'static str] {
        COUNTER_OP_NAMES
    }

    fn to_call(&self) -> OpCall {
        match self {
            CounterOp::Increment(n) => OpCall::unary(COUNTER_INC, *n),
            CounterOp::Decrement(n) => OpCall::unary(COUNTER_DEC, *n),
            CounterOp::Read => OpCall::nullary(COUNTER_READ),
        }
    }

    fn from_call(call: &OpCall) -> Option<Self> {
        match call.kind {
            COUNTER_INC => Some(CounterOp::Increment(call.params.first()?.as_int()?)),
            COUNTER_DEC => Some(CounterOp::Decrement(call.params.first()?.as_int()?)),
            COUNTER_READ => Some(CounterOp::Read),
            _ => None,
        }
    }

    fn is_readonly(&self) -> bool {
        matches!(self, CounterOp::Read)
    }
}

impl AdtSpec for Counter {
    type Op = CounterOp;
    const TYPE_NAME: &'static str = "counter";

    fn apply(&mut self, op: &Self::Op) -> OpResult {
        match op {
            CounterOp::Increment(n) => {
                self.value = self.value.wrapping_add(*n);
                OpResult::Ok
            }
            CounterOp::Decrement(n) => {
                self.value = self.value.wrapping_sub(*n);
                OpResult::Ok
            }
            CounterOp::Read => OpResult::Value(Value::Int(self.value)),
        }
    }

    /// Commutativity for Counter.
    ///
    /// | requested \ executed | inc | dec | read |
    /// |---|---|---|---|
    /// | inc  | Yes | Yes | No |
    /// | dec  | Yes | Yes | No |
    /// | read | No | No | Yes |
    fn commutativity_table() -> &'static CompatibilityTable {
        static TABLE: OnceLock<CompatibilityTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            use TableEntry::*;
            CompatibilityTable::from_rows(
                "Counter commutativity",
                COUNTER_OP_NAMES,
                &[&[Yes, Yes, No], &[Yes, Yes, No], &[No, No, Yes]],
            )
        })
    }

    /// Recoverability for Counter.
    ///
    /// | requested \ executed | inc | dec | read |
    /// |---|---|---|---|
    /// | inc  | Yes | Yes | Yes |
    /// | dec  | Yes | Yes | Yes |
    /// | read | No | No | Yes |
    fn recoverability_table() -> &'static CompatibilityTable {
        static TABLE: OnceLock<CompatibilityTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            use TableEntry::*;
            CompatibilityTable::from_rows(
                "Counter recoverability",
                COUNTER_OP_NAMES,
                &[&[Yes, Yes, Yes], &[Yes, Yes, Yes], &[No, No, Yes]],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{check_commutative, check_recoverable, verify_tables};
    use crate::Compatibility;
    use proptest::prelude::*;

    fn probe_states() -> Vec<Counter> {
        vec![
            Counter::new(),
            Counter::with_value(5),
            Counter::with_value(-17),
            Counter::with_value(1_000_000),
        ]
    }

    fn probe_ops() -> Vec<CounterOp> {
        vec![
            CounterOp::Increment(1),
            CounterOp::Increment(10),
            CounterOp::Decrement(3),
            CounterOp::Read,
        ]
    }

    #[test]
    fn counter_semantics() {
        let mut c = Counter::new();
        assert_eq!(c.apply(&CounterOp::Read), OpResult::Value(Value::Int(0)));
        assert_eq!(c.apply(&CounterOp::Increment(5)), OpResult::Ok);
        assert_eq!(c.apply(&CounterOp::Decrement(2)), OpResult::Ok);
        assert_eq!(c.apply(&CounterOp::Read), OpResult::Value(Value::Int(3)));
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn increments_commute_reads_do_not() {
        assert_eq!(
            Counter::classify(&CounterOp::Increment(1), &CounterOp::Decrement(2)),
            Compatibility::Commutative
        );
        assert_eq!(
            Counter::classify(&CounterOp::Increment(1), &CounterOp::Read),
            Compatibility::Recoverable
        );
        assert_eq!(
            Counter::classify(&CounterOp::Read, &CounterOp::Increment(1)),
            Compatibility::NonRecoverable
        );
        assert_eq!(
            Counter::classify(&CounterOp::Read, &CounterOp::Read),
            Compatibility::Commutative
        );
    }

    #[test]
    fn tables_are_sound_wrt_definitions() {
        let violations = verify_tables::<Counter>(&probe_states(), &probe_ops());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn read_genuinely_not_recoverable_after_increment() {
        let states = probe_states();
        assert!(!check_recoverable(
            &states,
            &CounterOp::Read,
            &CounterOp::Increment(1)
        ));
        assert!(check_commutative(
            &states,
            &CounterOp::Increment(2),
            &CounterOp::Increment(3)
        ));
    }

    #[test]
    fn op_call_round_trip() {
        for op in probe_ops() {
            let call = op.to_call();
            assert_eq!(CounterOp::from_call(&call), Some(op.clone()));
        }
        assert_eq!(CounterOp::from_call(&OpCall::nullary(4)), None);
        assert_eq!(
            CounterOp::from_call(&OpCall::unary(COUNTER_INC, "not an int")),
            None
        );
        assert_eq!(CounterOp::Read.kind_name(), "read");
    }

    proptest! {
        #[test]
        fn prop_inc_dec_commute(start in -100i64..100, a in 0i64..50, b in 0i64..50) {
            let states = vec![Counter::with_value(start)];
            prop_assert!(check_commutative(
                &states,
                &CounterOp::Increment(a),
                &CounterOp::Decrement(b)
            ));
        }

        #[test]
        fn prop_tables_sound(start in -100i64..100, amounts in proptest::collection::vec(0i64..20, 1..4)) {
            let states = vec![Counter::with_value(start)];
            let mut ops = vec![CounterOp::Read];
            for (i, a) in amounts.iter().enumerate() {
                if i % 2 == 0 {
                    ops.push(CounterOp::Increment(*a));
                } else {
                    ops.push(CounterOp::Decrement(*a));
                }
            }
            let violations = verify_tables::<Counter>(&states, &ops);
            prop_assert!(violations.is_empty(), "{violations:?}");
        }
    }
}
