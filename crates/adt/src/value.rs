//! The dynamic [`Value`] type used for operation parameters, return values
//! and object contents.
//!
//! Keeping parameters and results in a small dynamic type lets the
//! concurrency-control kernel treat every atomic data type uniformly (the
//! erased [`crate::SemanticObject`] interface) while the typed operation
//! enums ([`crate::StackOp`], [`crate::TableOp`], …) stay ergonomic for
//! application code.

use std::fmt;

/// A dynamically typed value.
///
/// `Value` is intentionally small: the paper's examples only ever move
/// integers, strings and booleans through operations, and the simulation
/// model does not inspect values at all.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    /// Absence of a value (e.g. `pop` on an empty stack returns `Null`).
    Null,
    /// A boolean, e.g. the result of `member`.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A UTF-8 string.
    Str(String),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Returns `true` if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short, single-line rendering used in logs and histories.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(7i32), Value::Int(7));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".to_owned()));
        assert_eq!(Value::from(String::from("y")), Value::Str("y".to_owned()));
    }

    #[test]
    fn accessors() {
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Bool(true).as_int(), None);
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Int(1).as_bool(), None);
        assert_eq!(Value::str("abc").as_str(), Some("abc"));
        assert_eq!(Value::Null.as_str(), None);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn ordering_is_total_within_variants() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
    }
}
