//! The typed [`AdtSpec`] trait, the erased [`SemanticObject`] interface and
//! the [`AdtObject`] adapter between them.
//!
//! The concurrency-control kernel (crate `sbcc-core`) is completely generic
//! over data types: it only needs to *classify* a requested operation
//! against executed, uncommitted operations and to *apply* operations to
//! object state. Those two capabilities are captured by [`SemanticObject`],
//! which is object safe so heterogeneous objects can live in one database.
//!
//! Application code and the semantics checkers prefer the fully typed
//! [`AdtSpec`] view; [`AdtObject`] lifts any `AdtSpec` into a
//! `SemanticObject`.

use crate::compat::{classify_with_tables, Compatibility, CompatibilityTable};
use crate::op::{AdtOp, OpCall, OpResult};
use std::any::Any;
use std::fmt;

/// A typed atomic data type: a state plus a set of operations with full
/// semantics (`state` and `return` components of the paper's specification
/// function `S -> S x V`).
pub trait AdtSpec: Clone + fmt::Debug + PartialEq + Send + Sync + 'static {
    /// The typed operation enum of this data type.
    type Op: AdtOp;

    /// Human-readable type name ("stack", "set", …).
    const TYPE_NAME: &'static str;

    /// Apply an operation: mutate the state and produce the return value.
    fn apply(&mut self, op: &Self::Op) -> OpResult;

    /// The commutativity table (paper Tables I, III, V, VII …).
    fn commutativity_table() -> &'static CompatibilityTable;

    /// The recoverability table (paper Tables II, IV, VI, VIII …).
    fn recoverability_table() -> &'static CompatibilityTable;

    /// Classify a requested operation against an executed, uncommitted one:
    /// commutativity is checked first, then recoverability, otherwise the
    /// pair conflicts. This is exactly the lookup the paper's object
    /// managers perform against the compatibility tables.
    fn classify(requested: &Self::Op, executed: &Self::Op) -> Compatibility {
        classify_with_tables(
            Self::commutativity_table(),
            Self::recoverability_table(),
            &requested.to_call(),
            &executed.to_call(),
        )
    }

    /// Apply a whole sequence of operations, returning the results.
    fn apply_all(&mut self, ops: &[Self::Op]) -> Vec<OpResult> {
        ops.iter().map(|o| self.apply(o)).collect()
    }
}

/// Object-safe view of an atomic data type, as consumed by the
/// concurrency-control kernel and the simulator.
pub trait SemanticObject: Send + fmt::Debug {
    /// Classify a requested operation against an executed, uncommitted one.
    ///
    /// # Contract
    ///
    /// The verdict must be **state-independent** (it may not read the
    /// object's current state) and **parameter-relational**: it may depend
    /// only on the two operation kinds and on whether the distinguishing
    /// parameters are equal, different, or not comparable (one side
    /// lacking a parameter). This mirrors the paper's restriction to
    /// "state-independent, but parameter-dependent" notions (the
    /// `Yes` / `Yes-SP` / `Yes-DP` / `No` table entries) and is what allows
    /// the kernel to memoise verdicts per `(kind, kind, relation)` cell
    /// instead of re-classifying every log entry. Every implementation in
    /// this workspace (table-driven ADTs and [`crate::AbstractObject`])
    /// satisfies it by construction.
    fn classify(&self, requested: &OpCall, executed: &OpCall) -> Compatibility;

    /// Apply an operation to the object state and return its result.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `op` does not describe a valid operation
    /// of this data type (this is a programming error: operation calls are
    /// always produced by the typed API or by the workload generator that
    /// owns the object).
    fn apply(&mut self, op: &OpCall) -> OpResult;

    /// Clone the object (state snapshot) behind a box.
    fn boxed_clone(&self) -> Box<dyn SemanticObject>;

    /// The data type's name.
    fn type_name(&self) -> &'static str;

    /// The operation-kind names, indexed by kind.
    fn op_names(&self) -> &'static [&'static str];

    /// A single-line rendering of the current state (diagnostics only).
    fn debug_state(&self) -> String;

    /// Upcast helper for state comparison in checkers.
    fn as_any(&self) -> &dyn Any;

    /// Structural equality of object states (used by the serializability
    /// checker to compare a replayed state against the observed one).
    fn state_eq(&self, other: &dyn SemanticObject) -> bool;

    /// `true` when `call` is a pure observer of this data type: applying it
    /// never changes the object state. The snapshot-read path answers such
    /// calls from a historical version without classification, so a wrong
    /// `true` is a serializability bug; the default is the safe `false`.
    fn is_readonly(&self, call: &OpCall) -> bool {
        let _ = call;
        false
    }
}

impl Clone for Box<dyn SemanticObject> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Adapter lifting a typed [`AdtSpec`] into the erased [`SemanticObject`]
/// interface.
#[derive(Debug, Clone, PartialEq)]
pub struct AdtObject<A: AdtSpec> {
    inner: A,
}

impl<A: AdtSpec> AdtObject<A> {
    /// Wrap a typed data type instance.
    pub fn new(inner: A) -> Self {
        AdtObject { inner }
    }

    /// Borrow the typed state.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Mutably borrow the typed state.
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Unwrap back into the typed state.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: AdtSpec> From<A> for AdtObject<A> {
    fn from(inner: A) -> Self {
        AdtObject::new(inner)
    }
}

impl<A: AdtSpec> SemanticObject for AdtObject<A> {
    fn classify(&self, requested: &OpCall, executed: &OpCall) -> Compatibility {
        classify_with_tables(
            A::commutativity_table(),
            A::recoverability_table(),
            requested,
            executed,
        )
    }

    fn apply(&mut self, op: &OpCall) -> OpResult {
        let typed = A::Op::from_call(op).unwrap_or_else(|| {
            panic!(
                "operation call {op} does not belong to data type {}",
                A::TYPE_NAME
            )
        });
        self.inner.apply(&typed)
    }

    fn boxed_clone(&self) -> Box<dyn SemanticObject> {
        Box::new(self.clone())
    }

    fn type_name(&self) -> &'static str {
        A::TYPE_NAME
    }

    fn op_names(&self) -> &'static [&'static str] {
        A::Op::kind_names()
    }

    fn debug_state(&self) -> String {
        format!("{:?}", self.inner)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn state_eq(&self, other: &dyn SemanticObject) -> bool {
        other
            .as_any()
            .downcast_ref::<AdtObject<A>>()
            .map(|o| o.inner == self.inner)
            .unwrap_or(false)
    }

    fn is_readonly(&self, call: &OpCall) -> bool {
        A::Op::from_call(call)
            .map(|op| op.is_readonly())
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{Stack, StackOp};
    use crate::value::Value;

    #[test]
    fn adt_object_wraps_and_unwraps() {
        let mut obj = AdtObject::new(Stack::new());
        assert_eq!(obj.type_name(), "stack");
        assert_eq!(obj.op_names(), &["push", "pop", "top"]);
        assert!(obj.inner().is_empty());
        obj.inner_mut().apply(&StackOp::Push(Value::Int(1)));
        assert_eq!(obj.clone().into_inner().len(), 1);
        let from: AdtObject<Stack> = Stack::new().into();
        assert!(from.inner().is_empty());
    }

    #[test]
    fn erased_apply_matches_typed_apply() {
        let mut typed = Stack::new();
        let mut erased: Box<dyn SemanticObject> = Box::new(AdtObject::new(Stack::new()));
        for op in [
            StackOp::Push(Value::Int(4)),
            StackOp::Push(Value::Int(2)),
            StackOp::Top,
            StackOp::Pop,
            StackOp::Pop,
            StackOp::Pop,
        ] {
            let r1 = typed.apply(&op);
            let r2 = erased.apply(&op.to_call());
            assert_eq!(r1, r2, "typed and erased results must agree for {op:?}");
        }
        assert!(erased.debug_state().contains("Stack"));
    }

    #[test]
    fn erased_classification_matches_typed_classification() {
        let erased: Box<dyn SemanticObject> = Box::new(AdtObject::new(Stack::new()));
        let push = StackOp::Push(Value::Int(1));
        let pop = StackOp::Pop;
        assert_eq!(
            erased.classify(&push.to_call(), &pop.to_call()),
            Stack::classify(&push, &pop)
        );
        assert_eq!(
            erased.classify(&pop.to_call(), &push.to_call()),
            Stack::classify(&pop, &push)
        );
    }

    #[test]
    fn state_eq_distinguishes_states_and_types() {
        let mut a = AdtObject::new(Stack::new());
        let b = AdtObject::new(Stack::new());
        assert!(a.state_eq(&b));
        a.apply(&StackOp::Push(Value::Int(9)).to_call());
        assert!(!a.state_eq(&b));

        let set = AdtObject::new(crate::set::Set::new());
        assert!(!a.state_eq(&set), "different data types never compare equal");
    }

    #[test]
    fn boxed_clone_is_deep() {
        let mut a: Box<dyn SemanticObject> = Box::new(AdtObject::new(Stack::new()));
        let b = a.clone();
        a.apply(&StackOp::Push(Value::Int(1)).to_call());
        assert!(!a.state_eq(b.as_ref()), "clone must not share state");
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn erased_apply_rejects_foreign_calls() {
        let mut erased: Box<dyn SemanticObject> = Box::new(AdtObject::new(Stack::new()));
        // kind 17 is not a stack operation
        erased.apply(&OpCall::nullary(17));
    }

    #[test]
    fn readonly_ops_are_flagged_and_never_mutate() {
        use crate::counter::{Counter, CounterOp};
        use crate::page::{Page, PageOp};
        use crate::queue::{FifoQueue, QueueOp};
        use crate::set::{Set, SetOp};
        use crate::table::{TableObject, TableOp};

        // The snapshot-read path relies on this contract: a call flagged
        // readonly may be applied to a shared historical version without
        // changing it. Each case seeds some state, then checks the flag and
        // re-applies every readonly op, asserting state_eq before/after.
        fn check(
            mut obj: Box<dyn SemanticObject>,
            setup: &[OpCall],
            readonly: &[OpCall],
            mutator: &OpCall,
        ) {
            for c in setup {
                obj.apply(c);
            }
            assert!(
                !obj.is_readonly(mutator),
                "{mutator} must not be readonly on {}",
                obj.type_name()
            );
            for c in readonly {
                assert!(
                    obj.is_readonly(c),
                    "{c} must be readonly on {}",
                    obj.type_name()
                );
                let before = obj.boxed_clone();
                obj.apply(c);
                assert!(
                    obj.state_eq(before.as_ref()),
                    "readonly {c} mutated {}",
                    obj.type_name()
                );
            }
        }

        check(
            Box::new(AdtObject::new(Counter::new())),
            &[CounterOp::Increment(5).to_call()],
            &[CounterOp::Read.to_call()],
            &CounterOp::Increment(1).to_call(),
        );
        check(
            Box::new(AdtObject::new(Page::new())),
            &[PageOp::Write(Value::Int(9)).to_call()],
            &[PageOp::Read.to_call()],
            &PageOp::Write(Value::Int(1)).to_call(),
        );
        check(
            Box::new(AdtObject::new(FifoQueue::new())),
            &[QueueOp::Enqueue(Value::Int(1)).to_call()],
            &[QueueOp::Front.to_call()],
            &QueueOp::Dequeue.to_call(),
        );
        check(
            Box::new(AdtObject::new(Set::new())),
            &[SetOp::Insert(Value::Int(3)).to_call()],
            &[
                SetOp::Member(Value::Int(3)).to_call(),
                SetOp::Member(Value::Int(4)).to_call(),
            ],
            &SetOp::Insert(Value::Int(4)).to_call(),
        );
        check(
            Box::new(AdtObject::new(Stack::new())),
            &[StackOp::Push(Value::Int(2)).to_call()],
            &[StackOp::Top.to_call()],
            &StackOp::Pop.to_call(),
        );
        check(
            Box::new(AdtObject::new(TableObject::new())),
            &[TableOp::Insert(Value::str("k"), Value::Int(1)).to_call()],
            &[
                TableOp::Lookup(Value::str("k")).to_call(),
                TableOp::Size.to_call(),
            ],
            &TableOp::Delete(Value::str("k")).to_call(),
        );
        // Unknown calls are conservatively not readonly.
        let stack: Box<dyn SemanticObject> = Box::new(AdtObject::new(Stack::new()));
        assert!(!stack.is_readonly(&OpCall::nullary(17)));
    }

    #[test]
    fn apply_all_runs_in_order() {
        let mut s = Stack::new();
        let results = s.apply_all(&[
            StackOp::Push(Value::Int(1)),
            StackOp::Push(Value::Int(2)),
            StackOp::Pop,
        ]);
        assert_eq!(
            results,
            vec![OpResult::Ok, OpResult::Ok, OpResult::Value(Value::Int(2))]
        );
    }
}
