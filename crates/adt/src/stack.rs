//! The `Stack` data type: push / pop / top (paper Section 3.2.2,
//! Tables III and IV).
//!
//! Two pushes do not commute — the final stack differs with the order — but
//! a push is **recoverable** relative to another push (and relative to pop
//! and top): a push always returns `ok`, so its observable semantics do not
//! depend on earlier uncommitted operations. This is the paper's motivating
//! example: under commutativity-based protocols two pushes serialize, under
//! recoverability they run in parallel with only a commit-order constraint.

use crate::compat::{CompatibilityTable, TableEntry};
use crate::op::{AdtOp, OpCall, OpResult};
use crate::spec::AdtSpec;
use crate::value::Value;
use std::sync::OnceLock;

/// A LIFO stack of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Stack {
    items: Vec<Value>,
}

impl Stack {
    /// An empty stack.
    pub fn new() -> Self {
        Stack { items: Vec::new() }
    }

    /// Build a stack from bottom-to-top values.
    pub fn from_values(items: Vec<Value>) -> Self {
        Stack { items }
    }

    /// Number of elements currently on the stack.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the stack holds no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The element currently on top, if any.
    pub fn peek(&self) -> Option<&Value> {
        self.items.last()
    }

    /// The stack contents, bottom to top.
    pub fn items(&self) -> &[Value] {
        &self.items
    }
}

/// Operations on a [`Stack`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackOp {
    /// Push an element; returns `ok`.
    Push(Value),
    /// Remove and return the top element; returns `null` on an empty stack.
    Pop,
    /// Return the top element without removing it; `null` when empty.
    Top,
}

/// Kind index of `push`.
pub const STACK_PUSH: usize = 0;
/// Kind index of `pop`.
pub const STACK_POP: usize = 1;
/// Kind index of `top`.
pub const STACK_TOP: usize = 2;

const STACK_OP_NAMES: &[&str] = &["push", "pop", "top"];

impl AdtOp for StackOp {
    const KINDS: usize = 3;

    fn kind(&self) -> usize {
        match self {
            StackOp::Push(_) => STACK_PUSH,
            StackOp::Pop => STACK_POP,
            StackOp::Top => STACK_TOP,
        }
    }

    fn kind_name(&self) -> &'static str {
        STACK_OP_NAMES[self.kind()]
    }

    fn kind_names() -> &'static [&'static str] {
        STACK_OP_NAMES
    }

    fn to_call(&self) -> OpCall {
        match self {
            StackOp::Push(v) => OpCall::unary(STACK_PUSH, v.clone()),
            StackOp::Pop => OpCall::nullary(STACK_POP),
            StackOp::Top => OpCall::nullary(STACK_TOP),
        }
    }

    fn from_call(call: &OpCall) -> Option<Self> {
        match call.kind {
            STACK_PUSH => Some(StackOp::Push(call.params.first()?.clone())),
            STACK_POP => Some(StackOp::Pop),
            STACK_TOP => Some(StackOp::Top),
            _ => None,
        }
    }

    fn is_readonly(&self) -> bool {
        matches!(self, StackOp::Top)
    }
}

impl AdtSpec for Stack {
    type Op = StackOp;
    const TYPE_NAME: &'static str = "stack";

    fn apply(&mut self, op: &Self::Op) -> OpResult {
        match op {
            StackOp::Push(v) => {
                self.items.push(v.clone());
                OpResult::Ok
            }
            StackOp::Pop => match self.items.pop() {
                Some(v) => OpResult::Value(v),
                None => OpResult::Null,
            },
            StackOp::Top => match self.items.last() {
                Some(v) => OpResult::Value(v.clone()),
                None => OpResult::Null,
            },
        }
    }

    /// Table III — commutativity for Stack.
    ///
    /// | requested \ executed | push | pop | top |
    /// |---|---|---|---|
    /// | push | Yes-SP | No | No |
    /// | pop  | No | No | No |
    /// | top  | No | No | Yes |
    fn commutativity_table() -> &'static CompatibilityTable {
        static TABLE: OnceLock<CompatibilityTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            use TableEntry::*;
            CompatibilityTable::from_rows(
                "Stack commutativity (Table III)",
                STACK_OP_NAMES,
                &[
                    &[YesSameParam, No, No],
                    &[No, No, No],
                    &[No, No, Yes],
                ],
            )
        })
    }

    /// Table IV — recoverability for Stack.
    ///
    /// | requested \ executed | push | pop | top |
    /// |---|---|---|---|
    /// | push | Yes | Yes | Yes |
    /// | pop  | No | No | Yes |
    /// | top  | No | No | Yes |
    fn recoverability_table() -> &'static CompatibilityTable {
        static TABLE: OnceLock<CompatibilityTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            use TableEntry::*;
            CompatibilityTable::from_rows(
                "Stack recoverability (Table IV)",
                STACK_OP_NAMES,
                &[
                    &[Yes, Yes, Yes],
                    &[No, No, Yes],
                    &[No, No, Yes],
                ],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{check_commutative, check_recoverable, verify_tables};
    use crate::Compatibility;
    use proptest::prelude::*;

    fn probe_states() -> Vec<Stack> {
        vec![
            Stack::new(),
            Stack::from_values(vec![Value::Int(1)]),
            Stack::from_values(vec![Value::Int(1), Value::Int(2)]),
            Stack::from_values(vec![Value::Int(3), Value::Int(3)]),
            Stack::from_values(vec![Value::str("a"), Value::Int(5), Value::Int(7)]),
        ]
    }

    fn probe_ops() -> Vec<StackOp> {
        vec![
            StackOp::Push(Value::Int(1)),
            StackOp::Push(Value::Int(2)),
            StackOp::Push(Value::str("a")),
            StackOp::Pop,
            StackOp::Top,
        ]
    }

    #[test]
    fn stack_semantics() {
        let mut s = Stack::new();
        assert!(s.is_empty());
        assert_eq!(s.apply(&StackOp::Pop), OpResult::Null);
        assert_eq!(s.apply(&StackOp::Top), OpResult::Null);
        assert_eq!(s.apply(&StackOp::Push(Value::Int(4))), OpResult::Ok);
        assert_eq!(s.apply(&StackOp::Push(Value::Int(2))), OpResult::Ok);
        assert_eq!(s.len(), 2);
        assert_eq!(s.peek(), Some(&Value::Int(2)));
        assert_eq!(s.apply(&StackOp::Top), OpResult::Value(Value::Int(2)));
        assert_eq!(s.apply(&StackOp::Pop), OpResult::Value(Value::Int(2)));
        assert_eq!(s.apply(&StackOp::Pop), OpResult::Value(Value::Int(4)));
        assert!(s.items().is_empty());
    }

    #[test]
    fn table_iii_commutativity_entries() {
        let t = Stack::commutativity_table();
        assert_eq!(t.entry(STACK_PUSH, STACK_PUSH), TableEntry::YesSameParam);
        assert_eq!(t.entry(STACK_PUSH, STACK_POP), TableEntry::No);
        assert_eq!(t.entry(STACK_POP, STACK_PUSH), TableEntry::No);
        assert_eq!(t.entry(STACK_POP, STACK_POP), TableEntry::No);
        assert_eq!(t.entry(STACK_TOP, STACK_TOP), TableEntry::Yes);
        assert_eq!(t.entry(STACK_TOP, STACK_PUSH), TableEntry::No);
    }

    #[test]
    fn table_iv_recoverability_entries() {
        let t = Stack::recoverability_table();
        // push is recoverable relative to everything
        assert_eq!(t.entry(STACK_PUSH, STACK_PUSH), TableEntry::Yes);
        assert_eq!(t.entry(STACK_PUSH, STACK_POP), TableEntry::Yes);
        assert_eq!(t.entry(STACK_PUSH, STACK_TOP), TableEntry::Yes);
        // pop / top are only recoverable relative to top
        assert_eq!(t.entry(STACK_POP, STACK_PUSH), TableEntry::No);
        assert_eq!(t.entry(STACK_POP, STACK_POP), TableEntry::No);
        assert_eq!(t.entry(STACK_POP, STACK_TOP), TableEntry::Yes);
        assert_eq!(t.entry(STACK_TOP, STACK_PUSH), TableEntry::No);
        assert_eq!(t.entry(STACK_TOP, STACK_POP), TableEntry::No);
        assert_eq!(t.entry(STACK_TOP, STACK_TOP), TableEntry::Yes);
    }

    #[test]
    fn two_pushes_are_recoverable_but_do_not_commute() {
        let p1 = StackOp::Push(Value::Int(4));
        let p2 = StackOp::Push(Value::Int(2));
        assert_eq!(Stack::classify(&p2, &p1), Compatibility::Recoverable);
        assert_eq!(Stack::classify(&p1, &p2), Compatibility::Recoverable);
        assert_eq!(
            Stack::classify(&p1, &p1),
            Compatibility::Commutative,
            "pushes of the same element commute (Yes-SP)"
        );
        assert_eq!(
            Stack::classify(&StackOp::Pop, &p1),
            Compatibility::NonRecoverable
        );
        assert_eq!(
            Stack::classify(&StackOp::Top, &p1),
            Compatibility::NonRecoverable
        );
        assert_eq!(
            Stack::classify(&p1, &StackOp::Top),
            Compatibility::Recoverable,
            "push is recoverable relative to top"
        );
        assert_eq!(
            Stack::classify(&StackOp::Pop, &StackOp::Top),
            Compatibility::Recoverable,
            "pop requested after an uncommitted top is recoverable"
        );
        assert_eq!(
            Stack::classify(&StackOp::Top, &StackOp::Top),
            Compatibility::Commutative
        );
    }

    #[test]
    fn tables_are_sound_wrt_definitions() {
        let violations = verify_tables::<Stack>(&probe_states(), &probe_ops());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn pop_after_pop_really_is_unrecoverable() {
        // Sanity-check the conservative entries against the definitions on a
        // state where they matter.
        let states = vec![Stack::from_values(vec![Value::Int(1), Value::Int(2)])];
        assert!(!check_recoverable(&states, &StackOp::Pop, &StackOp::Pop));
        assert!(!check_commutative(&states, &StackOp::Pop, &StackOp::Top));
    }

    #[test]
    fn op_call_round_trip() {
        for op in probe_ops() {
            let call = op.to_call();
            assert_eq!(StackOp::from_call(&call), Some(op.clone()));
            assert_eq!(call.kind, op.kind());
            assert_eq!(StackOp::kind_names()[op.kind()], op.kind_name());
        }
        assert_eq!(StackOp::from_call(&OpCall::nullary(77)), None);
        assert_eq!(StackOp::from_call(&OpCall::nullary(STACK_PUSH)), None);
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            (-20i64..20).prop_map(Value::Int),
            proptest::bool::ANY.prop_map(Value::Bool),
        ]
    }

    fn arb_stack() -> impl Strategy<Value = Stack> {
        proptest::collection::vec(arb_value(), 0..6).prop_map(Stack::from_values)
    }

    fn arb_op() -> impl Strategy<Value = StackOp> {
        prop_oneof![
            arb_value().prop_map(StackOp::Push),
            Just(StackOp::Pop),
            Just(StackOp::Top),
        ]
    }

    proptest! {
        #[test]
        fn prop_push_recoverable_relative_to_anything(s in arb_stack(), earlier in arb_op(), v in arb_value()) {
            let states = vec![s];
            prop_assert!(check_recoverable(&states, &StackOp::Push(v), &earlier));
        }

        #[test]
        fn prop_tables_sound_on_random_states(
            states in proptest::collection::vec(arb_stack(), 1..5),
            ops in proptest::collection::vec(arb_op(), 1..6),
        ) {
            let violations = verify_tables::<Stack>(&states, &ops);
            prop_assert!(violations.is_empty(), "{violations:?}");
        }

        #[test]
        fn prop_push_pop_is_identity(s in arb_stack(), v in arb_value()) {
            let mut s2 = s.clone();
            s2.apply(&StackOp::Push(v.clone()));
            let popped = s2.apply(&StackOp::Pop);
            prop_assert_eq!(popped, OpResult::Value(v));
            prop_assert_eq!(s2, s);
        }
    }
}
