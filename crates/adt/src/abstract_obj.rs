//! The abstract object used by the simulation's abstract-data-type model
//! (paper Section 5.5.2).
//!
//! In that model "the properties of the operations are defined by
//! compatibility tables, and the operations on the objects can be
//! arbitrary": only the *conflict behaviour* matters, not actual state. An
//! [`AbstractObject`] therefore carries a [`ConflictTable`] (generated from
//! the `P_c` / `P_r` parameters) and applies every operation as a no-op
//! returning `ok`.

use crate::compat::{Compatibility, ConflictTable};
use crate::op::{OpCall, OpResult};
use crate::spec::SemanticObject;
use rand::Rng;
use std::any::Any;

/// Operation-kind names exposed for abstract objects (the simulation model
/// uses four operations per object).
const ABSTRACT_OP_NAMES: &[&str] = &["op0", "op1", "op2", "op3", "op4", "op5", "op6", "op7"];

/// A stateless object whose conflict behaviour is given by an explicit
/// [`ConflictTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct AbstractObject {
    table: ConflictTable,
}

impl AbstractObject {
    /// Wrap an explicit conflict table.
    ///
    /// # Panics
    ///
    /// Panics if the table covers more than 8 operations (only because the
    /// static operation-name array is bounded; the simulation model uses 4).
    pub fn new(table: ConflictTable) -> Self {
        assert!(
            table.arity() <= ABSTRACT_OP_NAMES.len(),
            "abstract objects support at most {} operations",
            ABSTRACT_OP_NAMES.len()
        );
        AbstractObject { table }
    }

    /// Generate an abstract object with a random conflict table following
    /// the paper's `P_c` / `P_r` procedure.
    pub fn random<R: Rng + ?Sized>(n_ops: usize, p_c: usize, p_r: usize, rng: &mut R) -> Self {
        AbstractObject::new(ConflictTable::random(n_ops, p_c, p_r, rng))
    }

    /// An abstract read/write object: two operations (`op0` = read,
    /// `op1` = write) with the Page compatibility semantics. Useful in tests
    /// that want the read/write model without real page state.
    pub fn read_write() -> Self {
        use Compatibility::*;
        AbstractObject::new(ConflictTable::from_entries(
            2,
            vec![
                Commutative,    // (read, read)
                NonRecoverable, // (read, write)
                Recoverable,    // (write, read)
                Recoverable,    // (write, write)
            ],
        ))
    }

    /// The underlying conflict table.
    pub fn table(&self) -> &ConflictTable {
        &self.table
    }

    /// Number of operation kinds.
    pub fn arity(&self) -> usize {
        self.table.arity()
    }
}

impl SemanticObject for AbstractObject {
    fn classify(&self, requested: &OpCall, executed: &OpCall) -> Compatibility {
        self.table.get(requested.kind, executed.kind)
    }

    fn apply(&mut self, op: &OpCall) -> OpResult {
        assert!(
            op.kind < self.table.arity(),
            "operation kind {} out of range for abstract object with {} operations",
            op.kind,
            self.table.arity()
        );
        OpResult::Ok
    }

    fn boxed_clone(&self) -> Box<dyn SemanticObject> {
        Box::new(self.clone())
    }

    fn type_name(&self) -> &'static str {
        "abstract"
    }

    fn op_names(&self) -> &'static [&'static str] {
        &ABSTRACT_OP_NAMES[..self.table.arity()]
    }

    fn debug_state(&self) -> String {
        format!("abstract object with {} operations", self.table.arity())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn state_eq(&self, other: &dyn SemanticObject) -> bool {
        other
            .as_any()
            .downcast_ref::<AbstractObject>()
            .map(|o| o.table == self.table)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classification_follows_the_table() {
        let mut rng = StdRng::seed_from_u64(3);
        let obj = AbstractObject::random(4, 4, 4, &mut rng);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    obj.classify(&OpCall::nullary(i), &OpCall::nullary(j)),
                    obj.table().get(i, j)
                );
            }
        }
        assert_eq!(obj.arity(), 4);
    }

    #[test]
    fn apply_is_a_no_op_returning_ok() {
        let mut obj = AbstractObject::read_write();
        assert_eq!(obj.apply(&OpCall::nullary(0)), OpResult::Ok);
        assert_eq!(obj.apply(&OpCall::nullary(1)), OpResult::Ok);
        assert_eq!(obj.op_names(), &["op0", "op1"]);
        assert_eq!(obj.type_name(), "abstract");
        assert!(obj.debug_state().contains("2 operations"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn apply_rejects_unknown_kinds() {
        let mut obj = AbstractObject::read_write();
        obj.apply(&OpCall::nullary(5));
    }

    #[test]
    fn read_write_object_matches_page_semantics() {
        let obj = AbstractObject::read_write();
        let read = OpCall::nullary(0);
        let write = OpCall::nullary(1);
        assert_eq!(obj.classify(&read, &read), Compatibility::Commutative);
        assert_eq!(obj.classify(&read, &write), Compatibility::NonRecoverable);
        assert_eq!(obj.classify(&write, &read), Compatibility::Recoverable);
        assert_eq!(obj.classify(&write, &write), Compatibility::Recoverable);
    }

    #[test]
    fn state_eq_and_clone() {
        let a = AbstractObject::read_write();
        let b: Box<dyn SemanticObject> = a.boxed_clone();
        assert!(a.state_eq(b.as_ref()));
        let mut rng = StdRng::seed_from_u64(0);
        let c = AbstractObject::random(4, 2, 2, &mut rng);
        assert!(!a.state_eq(&c));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn rejects_oversized_tables() {
        AbstractObject::new(ConflictTable::all_commutative(9));
    }
}
