//! The `Set` data type: insert / delete / member (paper Section 3.2.3,
//! Tables V and VI).
//!
//! `insert` adds an item and returns `ok`; `delete` removes an item and
//! reports `Success` / `Failure` depending on presence; `member` tests
//! membership. Most pairs are compatible when their parameters differ
//! (`Yes-DP`); under recoverability, `insert` becomes compatible with
//! *everything* because its return value is unconditionally `ok`.

use crate::compat::{CompatibilityTable, TableEntry};
use crate::op::{AdtOp, OpCall, OpResult};
use crate::spec::AdtSpec;
use crate::value::Value;
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// A set of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Set {
    items: BTreeSet<Value>,
}

impl Set {
    /// An empty set.
    pub fn new() -> Self {
        Set {
            items: BTreeSet::new(),
        }
    }

    /// Build a set from the given values.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Self {
        Set {
            items: values.into_iter().collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test (direct state accessor, not the transactional op).
    pub fn contains(&self, v: &Value) -> bool {
        self.items.contains(v)
    }
}

/// Operations on a [`Set`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetOp {
    /// Add an item; returns `ok` (idempotent).
    Insert(Value),
    /// Remove an item; returns `Success` if it was present, else `Failure`.
    Delete(Value),
    /// Test membership; returns a boolean value.
    Member(Value),
}

/// Kind index of `insert`.
pub const SET_INSERT: usize = 0;
/// Kind index of `delete`.
pub const SET_DELETE: usize = 1;
/// Kind index of `member`.
pub const SET_MEMBER: usize = 2;

const SET_OP_NAMES: &[&str] = &["insert", "delete", "member"];

impl AdtOp for SetOp {
    const KINDS: usize = 3;

    fn kind(&self) -> usize {
        match self {
            SetOp::Insert(_) => SET_INSERT,
            SetOp::Delete(_) => SET_DELETE,
            SetOp::Member(_) => SET_MEMBER,
        }
    }

    fn kind_name(&self) -> &'static str {
        SET_OP_NAMES[self.kind()]
    }

    fn kind_names() -> &'static [&'static str] {
        SET_OP_NAMES
    }

    fn to_call(&self) -> OpCall {
        match self {
            SetOp::Insert(v) => OpCall::unary(SET_INSERT, v.clone()),
            SetOp::Delete(v) => OpCall::unary(SET_DELETE, v.clone()),
            SetOp::Member(v) => OpCall::unary(SET_MEMBER, v.clone()),
        }
    }

    fn from_call(call: &OpCall) -> Option<Self> {
        let param = call.params.first()?.clone();
        match call.kind {
            SET_INSERT => Some(SetOp::Insert(param)),
            SET_DELETE => Some(SetOp::Delete(param)),
            SET_MEMBER => Some(SetOp::Member(param)),
            _ => None,
        }
    }

    fn is_readonly(&self) -> bool {
        matches!(self, SetOp::Member(_))
    }
}

impl AdtSpec for Set {
    type Op = SetOp;
    const TYPE_NAME: &'static str = "set";

    fn apply(&mut self, op: &Self::Op) -> OpResult {
        match op {
            SetOp::Insert(v) => {
                self.items.insert(v.clone());
                OpResult::Ok
            }
            SetOp::Delete(v) => {
                if self.items.remove(v) {
                    OpResult::Success
                } else {
                    OpResult::Failure
                }
            }
            SetOp::Member(v) => OpResult::Value(Value::Bool(self.items.contains(v))),
        }
    }

    /// Table V — commutativity for Set.
    ///
    /// | requested \ executed | insert | delete | member |
    /// |---|---|---|---|
    /// | insert | Yes | Yes-DP | Yes-DP |
    /// | delete | Yes-DP | Yes-DP | Yes-DP |
    /// | member | Yes-DP | Yes-DP | Yes |
    fn commutativity_table() -> &'static CompatibilityTable {
        static TABLE: OnceLock<CompatibilityTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            use TableEntry::*;
            CompatibilityTable::from_rows(
                "Set commutativity (Table V)",
                SET_OP_NAMES,
                &[
                    &[Yes, YesDifferentParam, YesDifferentParam],
                    &[YesDifferentParam, YesDifferentParam, YesDifferentParam],
                    &[YesDifferentParam, YesDifferentParam, Yes],
                ],
            )
        })
    }

    /// Table VI — recoverability for Set.
    ///
    /// | requested \ executed | insert | delete | member |
    /// |---|---|---|---|
    /// | insert | Yes | Yes | Yes |
    /// | delete | Yes-DP | Yes-DP | Yes |
    /// | member | Yes-DP | Yes-DP | Yes |
    fn recoverability_table() -> &'static CompatibilityTable {
        static TABLE: OnceLock<CompatibilityTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            use TableEntry::*;
            CompatibilityTable::from_rows(
                "Set recoverability (Table VI)",
                SET_OP_NAMES,
                &[
                    &[Yes, Yes, Yes],
                    &[YesDifferentParam, YesDifferentParam, Yes],
                    &[YesDifferentParam, YesDifferentParam, Yes],
                ],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{check_commutative, check_recoverable, verify_tables};
    use crate::Compatibility;
    use proptest::prelude::*;

    fn probe_states() -> Vec<Set> {
        vec![
            Set::new(),
            Set::from_values([Value::Int(3)]),
            Set::from_values([Value::Int(3), Value::Int(7)]),
            Set::from_values([Value::Int(1), Value::Int(2), Value::Int(3)]),
        ]
    }

    fn probe_ops() -> Vec<SetOp> {
        vec![
            SetOp::Insert(Value::Int(3)),
            SetOp::Insert(Value::Int(7)),
            SetOp::Delete(Value::Int(3)),
            SetOp::Delete(Value::Int(9)),
            SetOp::Member(Value::Int(3)),
            SetOp::Member(Value::Int(9)),
        ]
    }

    #[test]
    fn set_semantics() {
        let mut s = Set::new();
        assert!(s.is_empty());
        assert_eq!(s.apply(&SetOp::Member(Value::Int(3))), OpResult::Value(Value::Bool(false)));
        assert_eq!(s.apply(&SetOp::Insert(Value::Int(3))), OpResult::Ok);
        assert_eq!(s.apply(&SetOp::Insert(Value::Int(3))), OpResult::Ok);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&Value::Int(3)));
        assert_eq!(s.apply(&SetOp::Member(Value::Int(3))), OpResult::Value(Value::Bool(true)));
        assert_eq!(s.apply(&SetOp::Delete(Value::Int(3))), OpResult::Success);
        assert_eq!(s.apply(&SetOp::Delete(Value::Int(3))), OpResult::Failure);
        assert!(s.is_empty());
    }

    #[test]
    fn table_v_commutativity_entries() {
        let t = Set::commutativity_table();
        assert_eq!(t.entry(SET_INSERT, SET_INSERT), TableEntry::Yes);
        assert_eq!(t.entry(SET_INSERT, SET_DELETE), TableEntry::YesDifferentParam);
        assert_eq!(t.entry(SET_INSERT, SET_MEMBER), TableEntry::YesDifferentParam);
        assert_eq!(t.entry(SET_DELETE, SET_DELETE), TableEntry::YesDifferentParam);
        assert_eq!(t.entry(SET_MEMBER, SET_MEMBER), TableEntry::Yes);
    }

    #[test]
    fn table_vi_recoverability_entries() {
        let t = Set::recoverability_table();
        // insert is recoverable relative to everything (returns "ok")
        assert_eq!(t.entry(SET_INSERT, SET_INSERT), TableEntry::Yes);
        assert_eq!(t.entry(SET_INSERT, SET_DELETE), TableEntry::Yes);
        assert_eq!(t.entry(SET_INSERT, SET_MEMBER), TableEntry::Yes);
        assert_eq!(t.entry(SET_DELETE, SET_INSERT), TableEntry::YesDifferentParam);
        assert_eq!(t.entry(SET_MEMBER, SET_INSERT), TableEntry::YesDifferentParam);
        assert_eq!(t.entry(SET_MEMBER, SET_MEMBER), TableEntry::Yes);
    }

    #[test]
    fn paper_example_insert_recoverable_relative_to_member() {
        // "insert is recoverable relative to member, as indicated by the Yes
        // entry (Table VI)"
        assert_eq!(
            Set::classify(&SetOp::Insert(Value::Int(3)), &SetOp::Member(Value::Int(3))),
            Compatibility::Recoverable
        );
        // ... while member after an uncommitted insert of the same element
        // conflicts (it would observe the insert's effect).
        assert_eq!(
            Set::classify(&SetOp::Member(Value::Int(3)), &SetOp::Insert(Value::Int(3))),
            Compatibility::NonRecoverable
        );
        // with different elements the two commute
        assert_eq!(
            Set::classify(&SetOp::Member(Value::Int(9)), &SetOp::Insert(Value::Int(3))),
            Compatibility::Commutative
        );
    }

    #[test]
    fn tables_are_sound_wrt_definitions() {
        let violations = verify_tables::<Set>(&probe_states(), &probe_ops());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn conservative_entries_are_justified() {
        let states = probe_states();
        // delete after insert of the same element is genuinely unrecoverable
        assert!(!check_recoverable(
            &states,
            &SetOp::Delete(Value::Int(9)),
            &SetOp::Insert(Value::Int(9))
        ));
        // delete/delete of the same element genuinely fails to commute
        assert!(!check_commutative(
            &states,
            &SetOp::Delete(Value::Int(3)),
            &SetOp::Delete(Value::Int(3))
        ));
    }

    #[test]
    fn op_call_round_trip() {
        for op in probe_ops() {
            let call = op.to_call();
            assert_eq!(SetOp::from_call(&call), Some(op.clone()));
        }
        assert_eq!(SetOp::from_call(&OpCall::nullary(5)), None);
        assert_eq!(SetOp::from_call(&OpCall::nullary(SET_INSERT)), None);
        assert_eq!(SetOp::Insert(Value::Null).kind_name(), "insert");
        assert_eq!(SetOp::Delete(Value::Null).kind_name(), "delete");
        assert_eq!(SetOp::Member(Value::Null).kind_name(), "member");
    }

    fn arb_elem() -> impl Strategy<Value = Value> {
        (0i64..8).prop_map(Value::Int)
    }

    fn arb_set() -> impl Strategy<Value = Set> {
        proptest::collection::btree_set(arb_elem(), 0..6).prop_map(|s| Set {
            items: s,
        })
    }

    fn arb_op() -> impl Strategy<Value = SetOp> {
        prop_oneof![
            arb_elem().prop_map(SetOp::Insert),
            arb_elem().prop_map(SetOp::Delete),
            arb_elem().prop_map(SetOp::Member),
        ]
    }

    proptest! {
        #[test]
        fn prop_tables_sound_on_random_states(
            states in proptest::collection::vec(arb_set(), 1..5),
            ops in proptest::collection::vec(arb_op(), 1..7),
        ) {
            let violations = verify_tables::<Set>(&states, &ops);
            prop_assert!(violations.is_empty(), "{violations:?}");
        }

        #[test]
        fn prop_insert_recoverable_relative_to_anything(s in arb_set(), earlier in arb_op(), v in arb_elem()) {
            prop_assert!(check_recoverable(&[s], &SetOp::Insert(v), &earlier));
        }

        #[test]
        fn prop_insert_then_member_is_true(s in arb_set(), v in arb_elem()) {
            let mut s = s;
            s.apply(&SetOp::Insert(v.clone()));
            prop_assert_eq!(s.apply(&SetOp::Member(v)), OpResult::Value(Value::Bool(true)));
        }
    }
}
