//! The `FifoQueue` data type: enqueue / dequeue / front.
//!
//! A second extension type, analogous to the paper's stack: `enqueue`
//! always returns `ok`, so it is recoverable relative to every other
//! operation; `dequeue` and `front` are observers and conflict with any
//! uncommitted mutator.

use crate::compat::{CompatibilityTable, TableEntry};
use crate::op::{AdtOp, OpCall, OpResult};
use crate::spec::AdtSpec;
use crate::value::Value;
use std::collections::VecDeque;
use std::sync::OnceLock;

/// A FIFO queue of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FifoQueue {
    items: VecDeque<Value>,
}

impl FifoQueue {
    /// An empty queue.
    pub fn new() -> Self {
        FifoQueue {
            items: VecDeque::new(),
        }
    }

    /// Build a queue from front-to-back values.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Self {
        FifoQueue {
            items: values.into_iter().collect(),
        }
    }

    /// Number of queued elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The element at the front, if any.
    pub fn peek(&self) -> Option<&Value> {
        self.items.front()
    }
}

/// Operations on a [`FifoQueue`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueOp {
    /// Append an element at the back; returns `ok`.
    Enqueue(Value),
    /// Remove and return the front element; `null` when empty.
    Dequeue,
    /// Return the front element without removing it; `null` when empty.
    Front,
}

/// Kind index of `enqueue`.
pub const QUEUE_ENQUEUE: usize = 0;
/// Kind index of `dequeue`.
pub const QUEUE_DEQUEUE: usize = 1;
/// Kind index of `front`.
pub const QUEUE_FRONT: usize = 2;

const QUEUE_OP_NAMES: &[&str] = &["enqueue", "dequeue", "front"];

impl AdtOp for QueueOp {
    const KINDS: usize = 3;

    fn kind(&self) -> usize {
        match self {
            QueueOp::Enqueue(_) => QUEUE_ENQUEUE,
            QueueOp::Dequeue => QUEUE_DEQUEUE,
            QueueOp::Front => QUEUE_FRONT,
        }
    }

    fn kind_name(&self) -> &'static str {
        QUEUE_OP_NAMES[self.kind()]
    }

    fn kind_names() -> &'static [&'static str] {
        QUEUE_OP_NAMES
    }

    fn to_call(&self) -> OpCall {
        match self {
            QueueOp::Enqueue(v) => OpCall::unary(QUEUE_ENQUEUE, v.clone()),
            QueueOp::Dequeue => OpCall::nullary(QUEUE_DEQUEUE),
            QueueOp::Front => OpCall::nullary(QUEUE_FRONT),
        }
    }

    fn from_call(call: &OpCall) -> Option<Self> {
        match call.kind {
            QUEUE_ENQUEUE => Some(QueueOp::Enqueue(call.params.first()?.clone())),
            QUEUE_DEQUEUE => Some(QueueOp::Dequeue),
            QUEUE_FRONT => Some(QueueOp::Front),
            _ => None,
        }
    }

    fn is_readonly(&self) -> bool {
        matches!(self, QueueOp::Front)
    }
}

impl AdtSpec for FifoQueue {
    type Op = QueueOp;
    const TYPE_NAME: &'static str = "queue";

    fn apply(&mut self, op: &Self::Op) -> OpResult {
        match op {
            QueueOp::Enqueue(v) => {
                self.items.push_back(v.clone());
                OpResult::Ok
            }
            QueueOp::Dequeue => match self.items.pop_front() {
                Some(v) => OpResult::Value(v),
                None => OpResult::Null,
            },
            QueueOp::Front => match self.items.front() {
                Some(v) => OpResult::Value(v.clone()),
                None => OpResult::Null,
            },
        }
    }

    /// Commutativity for FifoQueue.
    ///
    /// | requested \ executed | enqueue | dequeue | front |
    /// |---|---|---|---|
    /// | enqueue | Yes-SP | No | No |
    /// | dequeue | No | No | No |
    /// | front   | No | No | Yes |
    fn commutativity_table() -> &'static CompatibilityTable {
        static TABLE: OnceLock<CompatibilityTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            use TableEntry::*;
            CompatibilityTable::from_rows(
                "Queue commutativity",
                QUEUE_OP_NAMES,
                &[
                    &[YesSameParam, No, No],
                    &[No, No, No],
                    &[No, No, Yes],
                ],
            )
        })
    }

    /// Recoverability for FifoQueue.
    ///
    /// | requested \ executed | enqueue | dequeue | front |
    /// |---|---|---|---|
    /// | enqueue | Yes | Yes | Yes |
    /// | dequeue | No | No | Yes |
    /// | front   | No | No | Yes |
    fn recoverability_table() -> &'static CompatibilityTable {
        static TABLE: OnceLock<CompatibilityTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            use TableEntry::*;
            CompatibilityTable::from_rows(
                "Queue recoverability",
                QUEUE_OP_NAMES,
                &[
                    &[Yes, Yes, Yes],
                    &[No, No, Yes],
                    &[No, No, Yes],
                ],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{check_recoverable, verify_tables};
    use crate::Compatibility;
    use proptest::prelude::*;

    fn probe_states() -> Vec<FifoQueue> {
        vec![
            FifoQueue::new(),
            FifoQueue::from_values([Value::Int(1)]),
            FifoQueue::from_values([Value::Int(1), Value::Int(2)]),
            FifoQueue::from_values([Value::Int(5), Value::Int(5), Value::Int(6)]),
        ]
    }

    fn probe_ops() -> Vec<QueueOp> {
        vec![
            QueueOp::Enqueue(Value::Int(1)),
            QueueOp::Enqueue(Value::Int(2)),
            QueueOp::Dequeue,
            QueueOp::Front,
        ]
    }

    #[test]
    fn queue_semantics_are_fifo() {
        let mut q = FifoQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.apply(&QueueOp::Dequeue), OpResult::Null);
        assert_eq!(q.apply(&QueueOp::Front), OpResult::Null);
        q.apply(&QueueOp::Enqueue(Value::Int(1)));
        q.apply(&QueueOp::Enqueue(Value::Int(2)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek(), Some(&Value::Int(1)));
        assert_eq!(q.apply(&QueueOp::Front), OpResult::Value(Value::Int(1)));
        assert_eq!(q.apply(&QueueOp::Dequeue), OpResult::Value(Value::Int(1)));
        assert_eq!(q.apply(&QueueOp::Dequeue), OpResult::Value(Value::Int(2)));
        assert_eq!(q.apply(&QueueOp::Dequeue), OpResult::Null);
    }

    #[test]
    fn enqueue_is_recoverable_relative_to_everything() {
        let e = QueueOp::Enqueue(Value::Int(9));
        assert_eq!(
            FifoQueue::classify(&e, &QueueOp::Enqueue(Value::Int(1))),
            Compatibility::Recoverable
        );
        assert_eq!(FifoQueue::classify(&e, &QueueOp::Dequeue), Compatibility::Recoverable);
        assert_eq!(FifoQueue::classify(&e, &QueueOp::Front), Compatibility::Recoverable);
        assert_eq!(
            FifoQueue::classify(&QueueOp::Dequeue, &e),
            Compatibility::NonRecoverable
        );
        assert_eq!(
            FifoQueue::classify(&QueueOp::Dequeue, &QueueOp::Front),
            Compatibility::Recoverable
        );
        assert_eq!(
            FifoQueue::classify(&QueueOp::Front, &QueueOp::Front),
            Compatibility::Commutative
        );
        assert_eq!(
            FifoQueue::classify(&e, &e),
            Compatibility::Commutative,
            "identical enqueues commute (Yes-SP)"
        );
    }

    #[test]
    fn tables_are_sound_wrt_definitions() {
        let violations = verify_tables::<FifoQueue>(&probe_states(), &probe_ops());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn dequeue_not_recoverable_after_enqueue() {
        // the empty-queue state is the witness
        let states = vec![FifoQueue::new()];
        assert!(!check_recoverable(
            &states,
            &QueueOp::Dequeue,
            &QueueOp::Enqueue(Value::Int(1))
        ));
    }

    #[test]
    fn op_call_round_trip() {
        for op in probe_ops() {
            assert_eq!(QueueOp::from_call(&op.to_call()), Some(op.clone()));
        }
        assert_eq!(QueueOp::from_call(&OpCall::nullary(8)), None);
        assert_eq!(QueueOp::from_call(&OpCall::nullary(QUEUE_ENQUEUE)), None);
        assert_eq!(QueueOp::Front.kind_name(), "front");
    }

    fn arb_queue() -> impl Strategy<Value = FifoQueue> {
        proptest::collection::vec((0i64..10).prop_map(Value::Int), 0..5)
            .prop_map(FifoQueue::from_values)
    }

    fn arb_op() -> impl Strategy<Value = QueueOp> {
        prop_oneof![
            (0i64..10).prop_map(|v| QueueOp::Enqueue(Value::Int(v))),
            Just(QueueOp::Dequeue),
            Just(QueueOp::Front),
        ]
    }

    proptest! {
        #[test]
        fn prop_tables_sound_on_random_states(
            states in proptest::collection::vec(arb_queue(), 1..4),
            ops in proptest::collection::vec(arb_op(), 1..6),
        ) {
            let violations = verify_tables::<FifoQueue>(&states, &ops);
            prop_assert!(violations.is_empty(), "{violations:?}");
        }

        #[test]
        fn prop_fifo_order(values in proptest::collection::vec(0i64..100, 1..8)) {
            let mut q = FifoQueue::new();
            for v in &values {
                q.apply(&QueueOp::Enqueue(Value::Int(*v)));
            }
            for v in &values {
                prop_assert_eq!(q.apply(&QueueOp::Dequeue), OpResult::Value(Value::Int(*v)));
            }
            prop_assert!(q.is_empty());
        }
    }
}
