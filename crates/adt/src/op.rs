//! Operation representations.
//!
//! The paper models an operation as a total function `S -> S x V`: applied
//! in a state it produces a new state and a return value (Section 3.1, and
//! footnote 1: "every operation returns a value, at least a status or
//! condition code").
//!
//! Two representations coexist:
//!
//! * **Typed operations** — each atomic data type defines an enum
//!   (e.g. [`crate::StackOp`]) implementing [`AdtOp`]. Typed operations are
//!   what application code builds and what the definition-level semantics
//!   checkers consume.
//! * **Erased operations** — [`OpCall`] carries the operation *kind* (an
//!   index into the data type's compatibility tables) plus its parameters as
//!   [`Value`]s. The concurrency-control kernel and the simulator only ever
//!   see `OpCall`s, so they are completely generic over data types.

use crate::value::Value;
use std::fmt;

/// The return value of an operation, as observed by the invoking
/// transaction.
///
/// The variants mirror the vocabulary used throughout the paper's examples:
/// `ok` for unconditional mutators (push, set-insert, write), `Success` /
/// `Failure` for keyed mutators, and a payload-carrying `Value` for
/// observers (read, lookup, top, member, size, …). `Null` models
/// "not found" / "empty" results.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OpResult {
    /// The operation completed and has no interesting payload ("ok").
    Ok,
    /// The operation succeeded (e.g. `delete` of a present key).
    Success,
    /// The operation failed (e.g. `insert` of a duplicate key).
    Failure,
    /// The operation returned a value.
    Value(Value),
    /// The operation returned "nothing" (empty stack, missing key, …).
    Null,
}

impl OpResult {
    /// Convenience constructor wrapping a [`Value`].
    pub fn value(v: impl Into<Value>) -> Self {
        OpResult::Value(v.into())
    }

    /// Returns `true` when the result is [`OpResult::Success`] or
    /// [`OpResult::Ok`].
    pub fn is_success(&self) -> bool {
        matches!(self, OpResult::Success | OpResult::Ok)
    }

    /// Returns the payload value, if any.
    pub fn as_value(&self) -> Option<&Value> {
        match self {
            OpResult::Value(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for OpResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpResult::Ok => write!(f, "ok"),
            OpResult::Success => write!(f, "success"),
            OpResult::Failure => write!(f, "failure"),
            OpResult::Value(v) => write!(f, "{v}"),
            OpResult::Null => write!(f, "null"),
        }
    }
}

/// An erased operation invocation: a kind index plus parameters.
///
/// The `kind` indexes the rows/columns of the owning data type's
/// compatibility tables; `params` carries the arguments. Only the
/// *distinguishing* parameter (by convention, the first one) participates in
/// the `Yes-SP` / `Yes-DP` parameter-dependent classification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OpCall {
    /// Operation kind: an index into the data type's compatibility tables.
    pub kind: usize,
    /// Operation parameters.
    pub params: Vec<Value>,
}

impl OpCall {
    /// Build an operation call with no parameters.
    pub fn nullary(kind: usize) -> Self {
        OpCall {
            kind,
            params: Vec::new(),
        }
    }

    /// Build an operation call with a single parameter.
    pub fn unary(kind: usize, p: impl Into<Value>) -> Self {
        OpCall {
            kind,
            params: vec![p.into()],
        }
    }

    /// Build an operation call with two parameters.
    pub fn binary(kind: usize, p0: impl Into<Value>, p1: impl Into<Value>) -> Self {
        OpCall {
            kind,
            params: vec![p0.into(), p1.into()],
        }
    }

    /// The distinguishing parameter used for `Yes-SP` / `Yes-DP`
    /// classification (the first parameter, if any).
    pub fn distinguishing_param(&self) -> Option<&Value> {
        self.params.first()
    }

    /// Returns `true` when both calls have a distinguishing parameter and
    /// the parameters are equal.
    pub fn same_param(&self, other: &OpCall) -> bool {
        match (self.distinguishing_param(), other.distinguishing_param()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for OpCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}(", self.kind)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

/// A typed operation belonging to some atomic data type.
///
/// Implementations provide a bidirectional mapping to [`OpCall`] so the
/// same operation value can be used with the typed API, the erased kernel
/// interface and the semantics checkers.
pub trait AdtOp: Clone + fmt::Debug + Send + Sync + 'static {
    /// Number of distinct operation kinds for this data type.
    const KINDS: usize;

    /// The kind index of this operation (row/column in the tables).
    fn kind(&self) -> usize;

    /// The human-readable name of this operation's kind.
    fn kind_name(&self) -> &'static str;

    /// Names of all kinds, indexed by kind.
    fn kind_names() -> &'static [&'static str];

    /// Convert to the erased representation.
    fn to_call(&self) -> OpCall;

    /// Convert back from the erased representation.
    ///
    /// Returns `None` if the call does not describe a valid operation of
    /// this data type (wrong kind index or malformed parameters).
    fn from_call(call: &OpCall) -> Option<Self>;

    /// The distinguishing parameter for parameter-dependent classification.
    fn distinguishing_param(&self) -> Option<Value> {
        self.to_call().distinguishing_param().cloned()
    }

    /// `true` when the operation is a pure observer: applying it never
    /// changes the object state (top, front, read, member, lookup, size).
    ///
    /// Read-only operations are what the multi-version snapshot-read path
    /// may answer from a historical version instead of the classified,
    /// blockable execution path, so a wrong `true` here is a
    /// serializability bug. The default is the safe `false` — every
    /// operation is assumed to mutate unless its data type says otherwise.
    fn is_readonly(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_result_helpers() {
        assert!(OpResult::Ok.is_success());
        assert!(OpResult::Success.is_success());
        assert!(!OpResult::Failure.is_success());
        assert!(!OpResult::Null.is_success());
        assert_eq!(
            OpResult::value(3).as_value(),
            Some(&Value::Int(3)),
            "value() wraps into Value"
        );
        assert_eq!(OpResult::Ok.as_value(), None);
    }

    #[test]
    fn op_result_display() {
        assert_eq!(OpResult::Ok.to_string(), "ok");
        assert_eq!(OpResult::Success.to_string(), "success");
        assert_eq!(OpResult::Failure.to_string(), "failure");
        assert_eq!(OpResult::Null.to_string(), "null");
        assert_eq!(OpResult::value(9).to_string(), "9");
    }

    #[test]
    fn op_call_constructors() {
        let c = OpCall::nullary(2);
        assert_eq!(c.kind, 2);
        assert!(c.params.is_empty());
        assert_eq!(c.distinguishing_param(), None);

        let c = OpCall::unary(0, 5);
        assert_eq!(c.distinguishing_param(), Some(&Value::Int(5)));

        let c = OpCall::binary(1, "k", 10);
        assert_eq!(c.params.len(), 2);
        assert_eq!(c.distinguishing_param(), Some(&Value::str("k")));
    }

    #[test]
    fn same_param_compares_first_parameter_only() {
        let a = OpCall::binary(0, "k", 1);
        let b = OpCall::binary(1, "k", 2);
        let c = OpCall::binary(0, "j", 1);
        let d = OpCall::nullary(0);
        assert!(a.same_param(&b));
        assert!(!a.same_param(&c));
        assert!(!a.same_param(&d), "nullary ops never share a parameter");
        assert!(!d.same_param(&d));
    }

    #[test]
    fn op_call_display() {
        assert_eq!(OpCall::nullary(3).to_string(), "op#3()");
        assert_eq!(OpCall::binary(0, 1, 2).to_string(), "op#0(1, 2)");
    }
}
