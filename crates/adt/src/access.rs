//! Declared access sets: the footprint a batch *promises* to stay inside.
//!
//! Block-STM-style schedulers build their dependency graphs from declared
//! read/write sets instead of inspecting each operation as it arrives.
//! [`AccessSet`] is the declaration carrier for this codebase's variant:
//! a batch may attach one to its submission, and the scheduler admits the
//! whole group in a single pass over the declared footprint when it is
//! disjoint from every live transaction — **zero per-op classification**.
//!
//! A declaration is a promise, never a proof: the scheduler re-checks
//! every call against the declared set at admission and falls back to the
//! semantic classifier (or aborts, per policy) the moment an operation
//! touches an undeclared object. Mis-declaration is therefore detected,
//! not trusted — which is what makes the fast path safe to expose to
//! arbitrary clients, including remote ones on the wire protocol.
//!
//! The key type is generic: the kernel declares in local `ObjectId`s, the
//! session layer in shard-qualified locations, and the wire protocol in
//! registration names. [`AccessSet::project`] converts between them.

/// A declared read/write footprint over objects of key type `T`.
///
/// Both sets are kept sorted and deduplicated, so membership tests are
/// `O(log n)` and iteration order is deterministic. **Write coverage
/// implies read coverage** (a declared writer may also read the object),
/// mirroring the Block-STM convention that a write access subsumes a
/// read access to the same location.
///
/// ```
/// use sbcc_adt::AccessSet;
///
/// let mut set = AccessSet::new();
/// set.declare_read("a");
/// set.declare_write("b");
/// assert!(set.covers_read(&"a") && set.covers_read(&"b"));
/// assert!(set.covers_write(&"b") && !set.covers_write(&"a"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessSet<T> {
    /// Objects declared read-only, sorted and deduplicated.
    reads: Vec<T>,
    /// Objects declared written (write implies read), sorted and
    /// deduplicated.
    writes: Vec<T>,
}

impl<T: Ord> AccessSet<T> {
    /// An empty declaration (covers nothing).
    pub fn new() -> Self {
        AccessSet {
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Build a set from unordered read/write lists (duplicates are
    /// collapsed; an object in both lists is a write).
    pub fn from_parts(reads: Vec<T>, writes: Vec<T>) -> Self {
        let mut set = AccessSet::new();
        for r in reads {
            set.declare_read(r);
        }
        for w in writes {
            set.declare_write(w);
        }
        set
    }

    /// Declare a read-only access to `object`. A no-op when the object is
    /// already declared (as a read or as a write).
    pub fn declare_read(&mut self, object: T) {
        if self.covers_read(&object) {
            return;
        }
        let at = self.reads.binary_search(&object).unwrap_err();
        self.reads.insert(at, object);
    }

    /// Declare a write access to `object` (which also covers reads of
    /// it). Promotes an existing read declaration.
    pub fn declare_write(&mut self, object: T) {
        if self.covers_write(&object) {
            return;
        }
        if let Ok(at) = self.reads.binary_search(&object) {
            self.reads.remove(at);
        }
        let at = self.writes.binary_search(&object).unwrap_err();
        self.writes.insert(at, object);
    }

    /// Does the declaration cover a *read* of `object`? (Declared writes
    /// cover reads too.)
    pub fn covers_read(&self, object: &T) -> bool {
        self.reads.binary_search(object).is_ok() || self.covers_write(object)
    }

    /// Does the declaration cover a *write* of `object`?
    pub fn covers_write(&self, object: &T) -> bool {
        self.writes.binary_search(object).is_ok()
    }

    /// `true` when nothing is declared.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// Number of declared objects (reads and writes combined; an object
    /// is counted once).
    pub fn len(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// The declared read-only objects, sorted (writes are *not* repeated
    /// here even though they cover reads).
    pub fn reads(&self) -> &[T] {
        &self.reads
    }

    /// The declared written objects, sorted.
    pub fn writes(&self) -> &[T] {
        &self.writes
    }

    /// Every declared object (reads then writes; each sorted, overall
    /// deduplicated by construction).
    pub fn objects(&self) -> impl Iterator<Item = &T> {
        self.reads.iter().chain(self.writes.iter())
    }

    /// Re-key the declaration through `f`, dropping entries it maps to
    /// `None`. This is how one declaration travels the stack: session
    /// locations project to per-shard local ids (dropping other shards'
    /// entries), wire-protocol names project to resolved handles, and so
    /// on. Read/write polarity is preserved.
    pub fn project<U: Ord>(&self, mut f: impl FnMut(&T) -> Option<U>) -> AccessSet<U> {
        let mut out = AccessSet::new();
        for r in &self.reads {
            if let Some(u) = f(r) {
                out.declare_read(u);
            }
        }
        for w in &self.writes {
            if let Some(u) = f(w) {
                out.declare_write(u);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declarations_sort_dedupe_and_promote() {
        let mut set = AccessSet::new();
        set.declare_read(3u32);
        set.declare_read(1);
        set.declare_read(3);
        set.declare_write(2);
        set.declare_write(2);
        assert_eq!(set.reads(), &[1, 3]);
        assert_eq!(set.writes(), &[2]);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());

        // Write promotion removes the read entry.
        set.declare_write(3);
        assert_eq!(set.reads(), &[1]);
        assert_eq!(set.writes(), &[2, 3]);
        // A write is never demoted back to a read.
        set.declare_read(3);
        assert_eq!(set.reads(), &[1]);
        assert_eq!(set.writes(), &[2, 3]);
    }

    #[test]
    fn write_coverage_implies_read_coverage() {
        let set = AccessSet::from_parts(vec![1u32], vec![2]);
        assert!(set.covers_read(&1));
        assert!(!set.covers_write(&1));
        assert!(set.covers_read(&2));
        assert!(set.covers_write(&2));
        assert!(!set.covers_read(&3));
        assert!(!set.covers_write(&3));
    }

    #[test]
    fn from_parts_treats_read_plus_write_as_write() {
        let set = AccessSet::from_parts(vec![7u32, 7, 8], vec![7]);
        assert_eq!(set.reads(), &[8]);
        assert_eq!(set.writes(), &[7]);
        assert_eq!(set.objects().copied().collect::<Vec<_>>(), vec![8, 7]);
    }

    #[test]
    fn project_rekeys_and_filters() {
        let set = AccessSet::from_parts(vec![1u32, 10], vec![2, 20]);
        // Keep only the small keys, re-keyed as strings.
        let projected = set.project(|k| (*k < 10).then(|| format!("o{k}")));
        assert_eq!(projected.reads(), &["o1".to_owned()]);
        assert_eq!(projected.writes(), &["o2".to_owned()]);
        // The empty projection is empty.
        assert!(set.project(|_| None::<u8>).is_empty());
        assert!(AccessSet::<u8>::default().is_empty());
    }
}
