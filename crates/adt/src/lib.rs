//! # sbcc-adt — atomic data types and operation semantics
//!
//! This crate implements the semantic layer of *Semantics-Based Concurrency
//! Control: Beyond Commutativity* (Badrinath & Ramamritham): operation
//! specifications, the formal notions of **commutativity** (Definition 2)
//! and **recoverability** (Definitions 1 and 3), parameter-dependent
//! compatibility tables (the paper's `Yes` / `Yes-SP` / `Yes-DP` / `No`
//! entries), and the concrete atomic data types the paper analyses:
//!
//! * [`Page`] — a read/write object (Tables I and II),
//! * [`Stack`] — push / pop / top (Tables III and IV),
//! * [`Set`] — insert / delete / member (Tables V and VI),
//! * [`TableObject`] — keyed insert / delete / lookup / size / modify
//!   (Tables VII and VIII),
//!
//! plus two extension types that exercise the same machinery:
//! [`Counter`] (increment / decrement / read) and [`FifoQueue`]
//! (enqueue / dequeue / front).
//!
//! The crate also provides [`AbstractObject`], a stateless object whose
//! conflict behaviour is driven entirely by a (possibly randomly generated)
//! [`ConflictTable`]; this is the "abstract data type model" used in the
//! paper's simulation study (Section 5.5.2), where each object has four
//! operations and `P_c` commutative / `P_r` recoverable entries.
//!
//! ## Semantics, not syntax
//!
//! Every static table shipped here is validated (in unit and property tests)
//! against the *formal definitions*: [`semantics::check_commutative`]
//! evaluates Definition 2 and [`semantics::check_recoverable`] evaluates
//! Definition 1 over sampled states, and the tests assert that whenever a
//! table admits a pair of operations the definition holds for every sampled
//! state. Tables are allowed to be conservative (say `No` when a
//! state-dependent analysis could say yes) — the paper makes the same choice
//! ("we have restricted ourselves to state-independent, but
//! parameter-dependent notions").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstract_obj;
pub mod access;
pub mod compat;
pub mod counter;
pub mod op;
pub mod page;
pub mod queue;
pub mod semantics;
pub mod set;
pub mod spec;
pub mod stack;
pub mod table;
pub mod value;

pub use abstract_obj::AbstractObject;
pub use access::AccessSet;
pub use compat::{Compatibility, CompatibilityTable, ConflictTable, TableEntry};
pub use counter::{Counter, CounterOp};
pub use op::{AdtOp, OpCall, OpResult};
pub use page::{Page, PageOp};
pub use queue::{FifoQueue, QueueOp};
pub use set::{Set, SetOp};
pub use spec::{AdtObject, AdtSpec, SemanticObject};
pub use stack::{Stack, StackOp};
pub use table::{TableObject, TableOp};
pub use value::Value;
