//! Quickstart: recoverability beyond commutativity on a stack, through the
//! session API.
//!
//! Two `push` operations do not commute — the final stack depends on their
//! order — so a commutativity-based scheduler serialises them. But a push
//! always returns `ok`, so it is *recoverable* relative to an uncommitted
//! push: both transactions proceed immediately and only their commit order
//! is constrained. If either aborts, the other still commits — no cascading
//! aborts.
//!
//! Run with: `cargo run --example quickstart`

use sbcc::prelude::*;

fn main() {
    // A database using the paper's recoverability-based scheduler.
    let db = Database::new(SchedulerConfig::default().with_policy(ConflictPolicy::Recoverability));
    // `register` returns a *typed* handle: `jobs` only accepts `StackOp`s.
    let jobs = db.register("jobs", Stack::new());

    // `begin` returns a transaction session that would auto-abort on drop.
    let t1 = db.begin();
    let t2 = db.begin();
    let t2_id = t2.id();

    // Both pushes execute immediately, even though they do not commute.
    t1.exec(&jobs, StackOp::Push(Value::Int(4))).unwrap();
    t2.exec(&jobs, StackOp::Push(Value::Int(2))).unwrap();
    println!("both pushes executed without waiting");

    // T2 finishes first. Because its push is recoverable relative to T1's,
    // it picked up a commit dependency: it *pseudo-commits* — complete from
    // the user's perspective, guaranteed to commit — and actually commits
    // once T1 terminates.
    let outcome2 = t2.commit().unwrap();
    println!("T2 commit outcome: pseudo-commit = {}", outcome2.is_pseudo_commit());

    // A third transaction that wants to *observe* the stack must wait: a pop
    // is not recoverable relative to uncommitted pushes. Run it on its own
    // thread so it can block; `db.run` begins the session, commits on
    // success and would retry on a scheduler-initiated abort.
    let observer = {
        let db = db.clone();
        let jobs = jobs.clone();
        std::thread::spawn(move || db.run(|txn| txn.exec(&jobs, StackOp::Pop)).unwrap())
    };

    // T1 commits; the commit cascades to T2 (commit order = invocation
    // order: first T1's push, then T2's) and the blocked pop wakes up.
    std::thread::sleep(std::time::Duration::from_millis(20));
    t1.commit().unwrap();
    println!("T1 committed; T2 cascaded to a full commit: {:?}", db.outcome_of(t2_id));

    let popped = observer.join().expect("observer thread");
    println!("observer popped the top of the stack: {popped}");
    assert_eq!(popped, OpResult::Value(Value::Int(2)));

    // The execution is serializable in commit order.
    db.verify_serializable().expect("execution must be serializable");
    let stats = db.stats();
    println!(
        "stats: {} commits, {} pseudo-commits, {} blocks, {} commit dependencies",
        stats.commits, stats.pseudo_commits, stats.blocks, stats.commit_dependencies
    );
}
