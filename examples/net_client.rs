//! The wire front-end, end to end in one process: start a
//! [`sbcc::net::Server`], connect a [`sbcc::net::NetClient`] over a
//! real loopback socket, and run transactions through the same
//! scheduler kernel the in-process front-ends use.
//!
//! The walkthrough covers the protocol's working set:
//!
//! 1. **Commuting ops over the wire**: register a counter, run a
//!    transaction of increments, commit, read the result back.
//! 2. **Pipelining**: several requests written before any response is
//!    read — request ids pair responses to requests, so a client never
//!    has to run lock-step with the server.
//! 3. **Kernel semantics cross the wire**: two clients conflict on a
//!    stack; the pop blocks *in the kernel* (not in the server) until
//!    the push commits, exactly as `examples/quickstart.rs` shows
//!    in-process.
//! 4. **Tenancy**: a second tenant registers the same object name and
//!    sees a disjoint namespace.
//!
//! Run with: `cargo run --release --example net_client`
//! (Against a separate server process, start `repro --serve` and point
//! `NetClient::connect` at the printed address instead.)

use sbcc::core::aio::AsyncDatabase;
use sbcc::core::SchedulerConfig;
use sbcc::net::{AdtType, NetClient, Request, Response, Server, ServerConfig};
use sbcc::prelude::*;

fn main() {
    // In-process server on an ephemeral port; `repro --serve` runs this
    // same front-end as its own process.
    let server = Server::start(
        AsyncDatabase::new(SchedulerConfig::default().with_policy(ConflictPolicy::Recoverability)),
        ServerConfig::default(),
    )
    .expect("bind loopback server");
    let addr = server.local_addr();
    println!("server listening on {addr}");

    // 1. Commuting ops: a counter transaction, committed and read back.
    let mut client = NetClient::connect(addr, "tenant-a").expect("connect");
    client.register("hits", AdtType::Counter).expect("register");
    let txn = client.begin().expect("begin");
    for _ in 0..3 {
        client
            .exec(txn, "hits", CounterOp::Increment(2).to_call())
            .expect("increment");
    }
    client.commit(txn).expect("commit");

    let txn = client.begin().expect("begin");
    let total = client
        .exec(txn, "hits", CounterOp::Read.to_call())
        .expect("read");
    client.commit(txn).expect("commit");
    println!("tenant-a committed total: {total:?}");
    assert_eq!(total, OpResult::Value(Value::Int(6)));

    // 2. Pipelining: write a burst of increments, then collect the
    // responses. `send` returns the request id; `recv_for` pairs them.
    let txn = client.begin().expect("begin");
    let ids: Vec<u64> = (0..4)
        .map(|_| {
            client
                .send(&Request::Exec {
                    txn,
                    object: "hits".into(),
                    call: CounterOp::Increment(1).to_call(),
                })
                .expect("pipeline send")
        })
        .collect();
    for id in ids {
        match client.recv_for(id).expect("pipeline recv") {
            Response::Result(_) => {}
            other => panic!("unexpected pipelined response: {other:?}"),
        }
    }
    client.abort(txn).expect("abort the pipelined burst");

    // 3. A real conflict: the pop is *not* recoverable relative to the
    // uncommitted push, so the server's session blocks in the kernel
    // until the push commits — the client thread just waits on its
    // response frame.
    client.register("jobs", AdtType::Stack).expect("register");
    let producer = client.begin().expect("begin producer");
    client
        .exec(producer, "jobs", StackOp::Push(Value::Int(42)).to_call())
        .expect("push");

    let consumer = std::thread::spawn({
        move || {
            let mut client = NetClient::connect(addr, "tenant-a").expect("connect consumer");
            let txn = client.begin().expect("begin consumer");
            let popped = client
                .exec(txn, "jobs", StackOp::Pop.to_call())
                .expect("pop");
            client.commit(txn).expect("commit consumer");
            popped
        }
    });
    // Give the consumer time to block inside the kernel, then commit.
    std::thread::sleep(std::time::Duration::from_millis(50));
    client.commit(producer).expect("commit producer");
    let popped = consumer.join().expect("consumer thread");
    println!("consumer popped: {popped:?}");
    assert_eq!(popped, OpResult::Value(Value::Int(42)));

    // 4. Tenant isolation: same name, different tenant, fresh counter.
    let mut other = NetClient::connect(addr, "tenant-b").expect("connect tenant-b");
    other.register("hits", AdtType::Counter).expect("register");
    let txn = other.begin().expect("begin");
    let fresh = other
        .exec(txn, "hits", CounterOp::Read.to_call())
        .expect("read");
    other.commit(txn).expect("commit");
    println!("tenant-b sees a fresh counter: {fresh:?}");
    assert_eq!(fresh, OpResult::Value(Value::Int(0)));

    drop(client);
    drop(other);
    let db = server.db().clone();
    let stats = server.shutdown();
    println!("server stats: {}", stats.summary());
    assert_eq!(stats.transactions_in_flight, 0, "no leaked sessions");
    db.verify_serializable().expect("history serializable");
    println!("ok");
}
