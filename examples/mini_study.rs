//! A miniature version of the paper's Figure 4 study, run through the public
//! simulation API: throughput of the commutativity-only baseline vs the
//! recoverability scheduler on the read/write model as the multiprogramming
//! level grows.
//!
//! The full reproduction (all figures, paper-scale parameters) lives in the
//! `repro` binary of the `sbcc-experiments` crate; this example shows how to
//! drive the simulator directly from application code.
//!
//! Run with: `cargo run --release --example mini_study`

use sbcc::prelude::*;
use sbcc::sim::run_averaged;

fn main() {
    let mpl_levels = [10, 25, 50, 100, 200];
    let policies = [
        ConflictPolicy::CommutativityOnly,
        ConflictPolicy::Recoverability,
    ];

    println!("mini Figure-4 study: read/write model, infinite resources");
    println!("(5 000 completions per point, 2 runs — see `repro --figure 4` for full scale)\n");
    println!("{:>6} {:>18} {:>18} {:>12}", "mpl", "commutativity", "recoverability", "speedup");

    for mpl in mpl_levels {
        let mut row = Vec::new();
        for policy in policies {
            let params = SimParams::read_write(mpl, policy)
                .with_completions(5_000)
                .with_seed(7);
            let agg = run_averaged(&params, 2);
            row.push(agg.throughput.mean);
        }
        println!(
            "{:>6} {:>14.1} tps {:>14.1} tps {:>11.2}x",
            mpl,
            row[0],
            row[1],
            row[1] / row[0].max(f64::EPSILON)
        );
    }

    println!("\nA single detailed point (mpl = 50, recoverability):");
    let params = SimParams::read_write(50, ConflictPolicy::Recoverability).with_completions(5_000);
    let mut sim = Simulator::new(params.clone());
    let result = sim.run();
    println!("  {result}");
    println!(
        "  completions: {} ({} pseudo-commits at completion time)",
        result.completed, result.pseudo_commit_completions
    );

    // The same point with batched submission: each transaction hands its
    // whole script to the kernel as one group (admitted prefix serviced as
    // one burst) instead of one round-trip per operation.
    let batched = Simulator::new(params.clone().with_batch_submission(true)).run();
    println!("\nSame point, batched submission:");
    println!("  {batched}");
    println!(
        "  batched vs per-call throughput: {:.1} vs {:.1} tps",
        batched.throughput, result.throughput
    );

    // Victim-policy comparison at the same point: the closed-network
    // driver now handles asynchronous victim aborts, so Youngest runs at
    // scale (its victims can be mid-service when the cycle is detected).
    let youngest = Simulator::new(params.clone().with_victim(VictimPolicy::Youngest)).run();
    println!("\nSame point, youngest-victim selection:");
    println!("  {youngest}");
    println!(
        "  restart ratio requester vs youngest: {:.3} vs {:.3}",
        result.restart_ratio, youngest.restart_ratio
    );

    // Shard-count sweep: the sharded kernel admits identically (the
    // differential suite pins that), so simulated throughput stays flat —
    // what changes is the admission bookkeeping, reported here via the
    // per-shard snapshot. Wall-clock scaling lives in `repro
    // --bench-kernel` (`sharded_*` workloads).
    println!("\nShard-count sweep (mpl = 50, recoverability):");
    println!(
        "{:>8} {:>12} {:>14} {:>18} {:>18}",
        "shards", "tps", "blocking", "escalated edges", "escalated checks"
    );
    for shards in [1usize, 2, 4, 8] {
        let mut sim = Simulator::new(params.clone().with_shards(shards));
        let r = sim.run();
        let snap = sim.stats_snapshot();
        println!(
            "{:>8} {:>12.1} {:>14.3} {:>18} {:>18}",
            shards,
            r.throughput,
            r.blocking_ratio,
            snap.aggregate.escalated_edges,
            snap.aggregate.escalated_checks,
        );
    }
}
