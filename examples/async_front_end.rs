//! Async front-end at scale: **one runtime thread multiplexing 10 000
//! concurrent in-flight transactions** over a sharded database.
//!
//! The sync session API parks one OS thread per blocked transaction, so
//! the concurrency the paper's semantics admit is capped by thread count.
//! The async front-end (`sbcc::core::aio`) suspends a *future* instead,
//! so a single `LocalExecutor` thread can hold thousands of live
//! sessions mid-flight. This example demonstrates both halves:
//!
//! 1. **Standing population**: 10 000 transactions each execute an
//!    operation, then wait on a gate that only opens once *every*
//!    transaction is live — so all 10 000 are provably in flight at the
//!    same instant on one thread — then execute a second operation and
//!    commit.
//! 2. **Conflict rendezvous**: producers hold uncommitted pushes on a
//!    set of stacks while consumers pop — every consumer blocks inside
//!    the kernel and is woken through its waiter slot when its producer
//!    commits.
//!
//! Run with: `cargo run --release --example async_front_end`
//! (`SBCC_SHARDS=auto` picks one kernel shard per core.)

use sbcc::core::aio::{yield_now, AsyncDatabase, LocalExecutor};
use sbcc::core::{DatabaseConfig, SchedulerConfig, ShardCount};
use sbcc::prelude::*;
use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};
use std::time::Instant;

/// A one-shot async gate: every waiter suspends until `open` is called,
/// then all resume. ~20 lines on top of plain `std::task` — no runtime
/// crate needed for this kind of coordination.
#[derive(Default)]
struct Gate {
    open: Cell<bool>,
    waiters: RefCell<Vec<Waker>>,
}

impl Gate {
    fn open(&self) {
        self.open.set(true);
        for waker in self.waiters.borrow_mut().drain(..) {
            waker.wake();
        }
    }

    fn wait(self: &Rc<Self>) -> GateWait {
        GateWait { gate: self.clone() }
    }
}

struct GateWait {
    gate: Rc<Gate>,
}

impl Future for GateWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.gate.open.get() {
            Poll::Ready(())
        } else {
            self.gate.waiters.borrow_mut().push(cx.waker().clone());
            Poll::Pending
        }
    }
}

fn main() {
    let txns: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10_000);
    // One kernel shard per core unless SBCC_SHARDS says otherwise.
    let shards = match std::env::var_os(sbcc::core::shard::SHARDS_ENV) {
        Some(_) => DatabaseConfig::shards_from_env(),
        None => ShardCount::Auto,
    };
    let db = AsyncDatabase::with_config(
        DatabaseConfig::new(SchedulerConfig::default().with_history(false)).with_shards(shards),
    );
    println!(
        "async front-end demo: {txns} transactions, {} kernel shard(s), 1 runtime thread",
        db.shard_count()
    );

    // ------------------------------------------------------------------
    // Phase 1: a standing population of `txns` live transactions.
    // ------------------------------------------------------------------
    let counters: Vec<_> = (0..256)
        .map(|i| db.register(format!("ctr{i}"), Counter::new()))
        .collect();
    let executor = LocalExecutor::new();
    let gate = Rc::new(Gate::default());
    let live = Rc::new(Cell::new(0usize));
    let peak = Rc::new(Cell::new(0usize));

    let start = Instant::now();
    for i in 0..txns {
        let db = db.clone();
        let first = counters[i % counters.len()].clone();
        let second = counters[(i * 7 + 1) % counters.len()].clone();
        let (gate, live, peak) = (gate.clone(), live.clone(), peak.clone());
        executor.spawn(async move {
            let txn = db.begin();
            txn.exec(&first, CounterOp::Increment(1)).await.unwrap();
            live.set(live.get() + 1);
            peak.set(peak.get().max(live.get()));
            if live.get() == txns {
                // Everyone is in flight at once; release the herd.
                gate.open();
            }
            gate.wait().await;
            txn.exec(&second, CounterOp::Increment(1)).await.unwrap();
            txn.commit().await.unwrap();
            live.set(live.get() - 1);
        });
    }
    executor.run();
    let elapsed = start.elapsed();

    let stats = db.stats();
    println!(
        "phase 1: {} commits, peak {} concurrent in-flight transactions, \
         {:.0} txn/s on one thread ({:.2?})",
        stats.commits,
        peak.get(),
        txns as f64 / elapsed.as_secs_f64(),
        elapsed
    );
    assert_eq!(stats.commits as usize, txns);
    assert_eq!(
        peak.get(),
        txns,
        "the gate guarantees every transaction was live simultaneously"
    );
    if txns >= 1_000 {
        assert!(peak.get() >= 1_000, "at least 1k concurrent in-flight sessions");
    }

    // ------------------------------------------------------------------
    // Phase 2: blocking and wakeups through the waiter slots.
    // ------------------------------------------------------------------
    let pairs = 512usize;
    let stacks: Vec<_> = (0..8)
        .map(|i| db.register(format!("queue{i}"), Stack::new()))
        .collect();
    let blocks_before = db.stats().blocks;
    let start = Instant::now();

    // Producers push (the push stays uncommitted until after the gate)...
    let gate2 = Rc::new(Gate::default());
    let produced = Rc::new(Cell::new(0usize));
    for i in 0..pairs {
        let db = db.clone();
        let stack = stacks[i % stacks.len()].clone();
        let (gate2, produced) = (gate2.clone(), produced.clone());
        executor.spawn(async move {
            let txn = db.begin();
            txn.exec(&stack, StackOp::Push(Value::Int(i as i64)))
                .await
                .unwrap();
            produced.set(produced.get() + 1);
            gate2.wait().await;
            txn.commit().await.unwrap();
        });
    }
    // ...consumers pop: each conflicts with an uncommitted push, suspends
    // inside the kernel, and is woken when the producer's commit settles
    // its request. `run` absorbs any deadlock-cycle aborts the mesh of
    // pops produces.
    let consumed = Rc::new(Cell::new(0usize));
    for i in 0..pairs {
        let db = db.clone();
        let stack = stacks[i % stacks.len()].clone();
        let consumed = consumed.clone();
        executor.spawn(async move {
            db.run(|txn| {
                let stack = stack.clone();
                async move { txn.exec(&stack, StackOp::Pop).await }
            })
            .await
            .unwrap();
            consumed.set(consumed.get() + 1);
        });
    }
    // The controller task opens the gate once all producers hold their
    // pushes and the consumers have had a chance to block behind them
    // (FIFO executor: it was spawned last, so it runs after both waves).
    {
        let (gate2, produced) = (gate2.clone(), produced.clone());
        executor.spawn(async move {
            while produced.get() < pairs {
                yield_now().await;
            }
            gate2.open();
        });
    }
    executor.run();
    let elapsed = start.elapsed();

    let stats = db.stats();
    println!(
        "phase 2: {} producer/consumer pairs, {} kernel blocks -> wakeups, {:.2?}",
        pairs,
        stats.blocks - blocks_before,
        elapsed
    );
    assert_eq!(consumed.get(), pairs, "every consumer completed");
    assert!(
        stats.blocks > blocks_before,
        "consumers must actually have blocked behind uncommitted pushes"
    );
    println!(
        "totals: {} commits, {} blocks, {} unblocks, {} scheduler aborts (all retried)",
        stats.commits,
        stats.blocks,
        stats.unblocks,
        stats.scheduler_aborts()
    );
    db.check_invariants().unwrap();
    println!("invariants hold across {} shards — done", db.shard_count());
}
