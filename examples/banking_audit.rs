//! A keyed account store with a long-running audit.
//!
//! The scenario that motivates the paper's `Table` example (Section 3.2.4):
//! an **audit** transaction reads the number of accounts (`size`) and then
//! inspects balances, while tellers keep opening accounts and adjusting
//! balances.
//!
//! * Under commutativity, `insert`/`delete` conflict with the audit's
//!   `size`, so tellers stall behind a long audit.
//! * Under recoverability, `insert` and `delete` are recoverable relative to
//!   `size`: tellers proceed immediately and merely commit after the audit.
//!
//! Each teller submits its two operations as one batch — one kernel pass,
//! one lock acquisition per teller transaction.
//!
//! Run with: `cargo run --example banking_audit`

use sbcc::prelude::*;
use std::time::Duration;

fn run(policy: ConflictPolicy) -> (u64, u64) {
    let db = Database::new(
        SchedulerConfig::default()
            .with_policy(policy)
            .with_history(true),
    );
    let accounts = db.register("accounts", TableObject::new());

    // Seed a few accounts with one batched setup transaction.
    let setup = db.begin();
    let mut seed = setup.batch();
    for i in 0..4 {
        seed.add_op(
            &accounts,
            TableOp::Insert(Value::Int(i), Value::Int(1_000 + i)),
        );
    }
    seed.submit().unwrap();
    setup.commit().unwrap();

    // The long-running audit: count the accounts, then look at some balances.
    let audit = db.begin();
    let size = audit.exec(&accounts, TableOp::Size).unwrap();
    let balance = audit
        .exec(&accounts, TableOp::Lookup(Value::Int(1)))
        .unwrap();

    // Tellers run on their own threads while the audit is still open.
    let mut tellers = Vec::new();
    for teller in 0..3i64 {
        let db = db.clone();
        let accounts = accounts.clone();
        tellers.push(std::thread::spawn(move || {
            let t = db.begin();
            t.batch()
                // Open a new account (recoverable relative to the audit's
                // size).
                .op(
                    &accounts,
                    TableOp::Insert(Value::Int(100 + teller), Value::Int(500)),
                )
                // Adjust an untouched balance (commutes with the audit's
                // lookup of account 1 because the keys differ).
                .op(
                    &accounts,
                    TableOp::Modify(Value::Int(2), Value::Int(2_000 + teller)),
                )
                .submit()
                .unwrap();
            let outcome = t.commit().unwrap();
            outcome.is_pseudo_commit()
        }));
    }

    // Give the tellers a moment; under recoverability they are already done
    // (pseudo-committed) before the audit finishes.
    std::thread::sleep(Duration::from_millis(50));
    let pseudo_before_audit_end = db.stats().pseudo_commits;

    // The audit finishes.
    let _ = audit
        .exec(&accounts, TableOp::Lookup(Value::Int(3)))
        .unwrap();
    audit.commit().unwrap();

    for teller in tellers {
        teller.join().expect("teller thread");
    }

    db.verify_serializable().expect("serializable execution");
    db.verify_commit_dependencies()
        .expect("commit order respects dependencies");

    println!(
        "  audit saw {size} accounts, account 1 balance {balance}; \
         tellers pseudo-committed before the audit ended: {pseudo_before_audit_end}"
    );
    let stats = db.stats();
    (stats.blocks, stats.pseudo_commits)
}

fn main() {
    println!("running the banking audit under both conflict policies\n");

    println!("commutativity-only baseline:");
    let (blocks_comm, pseudo_comm) = run(ConflictPolicy::CommutativityOnly);
    println!("  -> teller blocks: {blocks_comm}, pseudo-commits: {pseudo_comm}\n");

    println!("recoverability (this paper):");
    let (blocks_rec, pseudo_rec) = run(ConflictPolicy::Recoverability);
    println!("  -> teller blocks: {blocks_rec}, pseudo-commits: {pseudo_rec}\n");

    println!(
        "recoverability removed {} blocking events: tellers never wait behind the audit.",
        blocks_comm.saturating_sub(blocks_rec)
    );
    assert!(blocks_rec < blocks_comm);
}
