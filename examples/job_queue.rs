//! A multithreaded job pipeline: many producers, one consumer, one metrics
//! counter — all as transactions on atomic data types.
//!
//! Producers append jobs to a FIFO queue and bump a counter **in one
//! batched submission**: both operations are classified against the log
//! index in a single kernel pass under a single lock acquisition, instead
//! of one round-trip each. Under recoverability the producers never block
//! each other (enqueue is recoverable relative to enqueue, increments
//! commute), while the consumer — whose `dequeue` genuinely observes
//! state — waits only as long as uncommitted producers exist.
//!
//! Run with: `cargo run --example job_queue`

use sbcc::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const PRODUCERS: usize = 4;
const JOBS_PER_PRODUCER: i64 = 25;

fn main() {
    let db = Database::new(SchedulerConfig::default());
    let queue = db.register("jobs", FifoQueue::new());
    let submitted = db.register("submitted", Counter::new());

    let blocked_producer_ops = Arc::new(AtomicU64::new(0));

    // Producers: each job is its own transaction (enqueue + increment),
    // submitted as one two-call batch.
    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let db = db.clone();
        let queue = queue.clone();
        let submitted = submitted.clone();
        let blocked = blocked_producer_ops.clone();
        handles.push(std::thread::spawn(move || {
            for j in 0..JOBS_PER_PRODUCER {
                let job_id = (p as i64) * 1_000 + j;
                let t = db.begin();
                let before = db.stats().blocks;
                t.batch()
                    .op(&queue, QueueOp::Enqueue(Value::Int(job_id)))
                    .op(&submitted, CounterOp::Increment(1))
                    .submit()
                    .unwrap();
                if db.stats().blocks > before {
                    blocked.fetch_add(1, Ordering::Relaxed);
                }
                // Producers never conflict with each other: the commit is at
                // worst a pseudo-commit ordered behind earlier producers.
                t.commit().unwrap();
            }
        }));
    }
    for h in handles {
        h.join().expect("producer thread");
    }

    println!(
        "producers finished; producer operations that blocked: {}",
        blocked_producer_ops.load(Ordering::Relaxed)
    );

    // The consumer drains everything in one transaction.
    let consumer = db.begin();
    let mut drained = 0usize;
    loop {
        match consumer.exec(&queue, QueueOp::Dequeue).unwrap() {
            OpResult::Value(_) => drained += 1,
            OpResult::Null => break,
            other => panic!("unexpected dequeue result {other:?}"),
        }
    }
    let count = consumer.exec(&submitted, CounterOp::Read).unwrap();
    consumer.commit().unwrap();

    println!("consumer drained {drained} jobs; submitted counter reads {count}");
    assert_eq!(drained, PRODUCERS * JOBS_PER_PRODUCER as usize);
    assert_eq!(
        count,
        OpResult::Value(Value::Int((PRODUCERS as i64) * JOBS_PER_PRODUCER))
    );

    db.verify_serializable().expect("serializable execution");
    db.verify_commit_dependencies()
        .expect("commit order respects dependencies");
    let stats = db.stats();
    println!(
        "stats: {} commits, {} pseudo-commits, {} blocks, {} commit dependencies, \
         {} batches ({} calls), {} cycle checks",
        stats.commits,
        stats.pseudo_commits,
        stats.blocks,
        stats.commit_dependencies,
        stats.batches,
        stats.batched_calls,
        db.cycle_checks()
    );
}
