//! Markdown cross-link check: every relative link in the root documents
//! (README, ARCHITECTURE, ROADMAP, CHANGES) must point at a file or
//! directory that actually exists, so the docs cannot rot when a PR moves
//! a seam. CI runs this as its own leg (`cargo test -p sbcc --test
//! doc_links`) next to the rustdoc `-D warnings` pass, which covers the
//! intra-doc links on the Rust side.

use std::path::Path;

/// Extract `](target)` link targets from markdown, ignoring code spans.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_code_block = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_code_block = !in_code_block;
            continue;
        }
        if in_code_block {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let tail = &rest[open + 2..];
            let Some(close) = tail.find(')') else {
                break;
            };
            targets.push(tail[..close].to_owned());
            rest = &tail[close + 1..];
        }
    }
    targets
}

#[test]
fn relative_links_in_root_docs_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let docs = ["README.md", "ARCHITECTURE.md", "ROADMAP.md", "CHANGES.md"];
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for doc in docs {
        let path = root.join(doc);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{doc} must exist at the repo root: {e}"));
        for target in link_targets(&text) {
            // External links and pure anchors are out of scope here.
            if target.contains("://") || target.starts_with('#') || target.starts_with("mailto:") {
                continue;
            }
            let file = target.split('#').next().unwrap_or(&target);
            if file.is_empty() {
                continue;
            }
            checked += 1;
            if !root.join(file).exists() {
                broken.push(format!("{doc}: ]({target})"));
            }
        }
    }
    assert!(
        checked >= 10,
        "the root docs should cross-link each other (found only {checked} relative links)"
    );
    assert!(broken.is_empty(), "broken relative links:\n{}", broken.join("\n"));
}

#[test]
fn readme_covers_the_required_sections() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README.md exists");
    for needle in [
        "Beyond Commutativity",          // what the paper is
        "Crate map",                     // the crate map
        "Quickstart",                    // the quickstart
        "cargo build --release && cargo test -q", // the tier-1 command
        "ARCHITECTURE.md",
        "ROADMAP.md",
        "BENCH_kernel.json",
    ] {
        assert!(readme.contains(needle), "README.md must mention {needle:?}");
    }
}
