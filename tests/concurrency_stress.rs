//! Multithreaded stress tests against the blocking session front-end:
//! many threads, conflicting workloads, scheduler-initiated aborts — the
//! final execution must be serializable and the data-type invariants must
//! hold.

use sbcc::prelude::*;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

#[test]
fn concurrent_counter_increments_never_lose_updates() {
    let db = Database::new(SchedulerConfig::default());
    let counter = db.register("hits", Counter::new());
    let threads = 8;
    let per_thread = 50i64;

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            let db = db.clone();
            let counter = counter.clone();
            scope.spawn(move |_| {
                for _ in 0..per_thread {
                    let t = db.begin();
                    t.exec(&counter, CounterOp::Increment(1)).unwrap();
                    t.commit().unwrap();
                }
            });
        }
    })
    .expect("threads join");

    let t = db.begin();
    let value = t.exec(&counter, CounterOp::Read).unwrap();
    t.commit().unwrap();
    assert_eq!(value, OpResult::Value(Value::Int(threads as i64 * per_thread)));
    db.verify_serializable().unwrap();
    assert_eq!(db.stats().blocks, 0, "increments commute and never block");
}

#[test]
fn concurrent_bank_transfers_preserve_the_total_balance() {
    // Accounts live in a Table; transfers modify two accounts. Modifies of
    // the same key conflict (Yes-DP), so the scheduler blocks or aborts as
    // needed; the application retries aborted transfers.
    let db = Database::new(SchedulerConfig::default());
    let accounts = db.register("accounts", TableObject::new());
    let n_accounts = 6i64;
    let initial_balance = 100i64;

    // Seed through a batched setup session.
    let setup = db.begin();
    let mut seed = setup.batch();
    for a in 0..n_accounts {
        seed.add_op(
            &accounts,
            TableOp::Insert(Value::Int(a), Value::Int(initial_balance)),
        );
    }
    seed.submit().unwrap();
    setup.commit().unwrap();

    let retries = Arc::new(AtomicI64::new(0));
    crossbeam::scope(|scope| {
        for worker in 0..6 {
            let db = db.clone();
            let accounts = accounts.clone();
            let retries = retries.clone();
            scope.spawn(move |_| {
                let mut transferred = 0;
                let mut attempt = 0u64;
                while transferred < 20 {
                    attempt += 1;
                    assert!(attempt < 10_000, "worker {worker} is livelocked");
                    let from = (worker as i64 + transferred) % n_accounts;
                    let to = (from + 1 + worker as i64) % n_accounts;
                    if from == to {
                        transferred += 1;
                        continue;
                    }
                    match try_transfer(&db, &accounts, from, to, 1) {
                        Ok(()) => transferred += 1,
                        Err(_) => {
                            retries.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    })
    .expect("threads join");

    // Total balance is conserved.
    let t = db.begin();
    let mut total = 0i64;
    for a in 0..n_accounts {
        match t.exec(&accounts, TableOp::Lookup(Value::Int(a))).unwrap() {
            OpResult::Value(Value::Int(v)) => total += v,
            other => panic!("unexpected lookup result {other:?}"),
        }
    }
    t.commit().unwrap();
    assert_eq!(total, n_accounts * initial_balance);

    db.verify_serializable().unwrap();
    db.verify_commit_dependencies().unwrap();
    db.check_invariants().unwrap();
}

fn try_transfer(
    db: &Database,
    accounts: &Handle<TableObject>,
    from: i64,
    to: i64,
    amount: i64,
) -> Result<(), CoreError> {
    // The session guard replaces the old abort dance: any `?` below drops
    // the transaction, which aborts it (a no-op if the scheduler already
    // aborted it).
    let txn = db.begin();
    let from_balance = match txn.exec(accounts, TableOp::Lookup(Value::Int(from)))? {
        OpResult::Value(Value::Int(v)) => v,
        other => panic!("unexpected lookup result {other:?}"),
    };
    let to_balance = match txn.exec(accounts, TableOp::Lookup(Value::Int(to)))? {
        OpResult::Value(Value::Int(v)) => v,
        other => panic!("unexpected lookup result {other:?}"),
    };
    // The two updates go out as one batched submission.
    txn.batch()
        .op(
            accounts,
            TableOp::Modify(Value::Int(from), Value::Int(from_balance - amount)),
        )
        .op(
            accounts,
            TableOp::Modify(Value::Int(to), Value::Int(to_balance + amount)),
        )
        .submit()?;
    txn.commit()?;
    Ok(())
}

#[test]
fn concurrent_transfers_through_the_run_helper_always_complete() {
    // The same transfer workload, but written against `db.run`: scheduler
    // aborts are retried inside the closure runner, so every worker
    // completes its quota without an application-level retry loop.
    let db = Database::new(SchedulerConfig::default());
    let accounts = db.register("accounts", TableObject::new());
    let n_accounts = 5i64;
    let initial_balance = 100i64;

    let setup = db.begin();
    let mut seed = setup.batch();
    for a in 0..n_accounts {
        seed.add_op(
            &accounts,
            TableOp::Insert(Value::Int(a), Value::Int(initial_balance)),
        );
    }
    seed.submit().unwrap();
    setup.commit().unwrap();

    crossbeam::scope(|scope| {
        for worker in 0..4i64 {
            let db = db.clone();
            let accounts = accounts.clone();
            scope.spawn(move |_| {
                for round in 0..10i64 {
                    let from = (worker + round) % n_accounts;
                    let to = (from + 1) % n_accounts;
                    db.run(|txn| {
                        let balance = |key: i64| -> Result<i64, CoreError> {
                            match txn.exec(&accounts, TableOp::Lookup(Value::Int(key)))? {
                                OpResult::Value(Value::Int(v)) => Ok(v),
                                other => panic!("unexpected lookup result {other:?}"),
                            }
                        };
                        let from_balance = balance(from)?;
                        let to_balance = balance(to)?;
                        txn.exec(
                            &accounts,
                            TableOp::Modify(Value::Int(from), Value::Int(from_balance - 1)),
                        )?;
                        txn.exec(
                            &accounts,
                            TableOp::Modify(Value::Int(to), Value::Int(to_balance + 1)),
                        )?;
                        Ok(())
                    })
                    .expect("run retries scheduler aborts until the transfer commits");
                }
            });
        }
    })
    .expect("threads join");

    let total = db
        .run(|txn| {
            let mut total = 0i64;
            for a in 0..n_accounts {
                match txn.exec(&accounts, TableOp::Lookup(Value::Int(a)))? {
                    OpResult::Value(Value::Int(v)) => total += v,
                    other => panic!("unexpected lookup result {other:?}"),
                }
            }
            Ok(total)
        })
        .unwrap();
    assert_eq!(total, n_accounts * initial_balance);
    db.verify_serializable().unwrap();
    db.verify_commit_dependencies().unwrap();
    db.check_invariants().unwrap();
}

#[test]
fn mixed_producers_and_auditors_on_sets_and_stacks() {
    let db = Database::new(SchedulerConfig::default());
    let log = db.register("log", Stack::new());
    let seen = db.register("seen", Set::new());

    crossbeam::scope(|scope| {
        // Producers push log entries and insert into the set — all
        // recoverable or commutative, so they never block each other. Each
        // producer transaction is one two-call batch.
        for p in 0..4i64 {
            let db = db.clone();
            let log = log.clone();
            let seen = seen.clone();
            scope.spawn(move |_| {
                for i in 0..30 {
                    let t = db.begin();
                    let id = p * 1_000 + i;
                    t.batch()
                        .op(&log, StackOp::Push(Value::Int(id)))
                        .op(&seen, SetOp::Insert(Value::Int(id)))
                        .submit()
                        .unwrap();
                    t.commit().unwrap();
                }
            });
        }
        // An auditor occasionally reads the top of the log (this blocks
        // while producers are uncommitted, and may be aborted if it closes a
        // cycle — both are acceptable, it simply retries).
        let db_a = db.clone();
        let log_a = log.clone();
        scope.spawn(move |_| {
            let mut reads = 0;
            let mut attempts = 0;
            while reads < 5 && attempts < 1_000 {
                attempts += 1;
                let t = db_a.begin();
                match t.exec(&log_a, StackOp::Top) {
                    Ok(_) => {
                        let _ = t.commit();
                        reads += 1;
                    }
                    Err(_) => {
                        // Dropping the session aborts it (no-op when the
                        // scheduler already did).
                    }
                }
            }
        });
    })
    .expect("threads join");

    // Every produced id is visible exactly once.
    let t = db.begin();
    let mut count = 0;
    loop {
        match t.exec(&log, StackOp::Pop).unwrap() {
            OpResult::Value(Value::Int(id)) => {
                count += 1;
                assert_eq!(
                    t.exec(&seen, SetOp::Member(Value::Int(id))).unwrap(),
                    OpResult::Value(Value::Bool(true))
                );
            }
            OpResult::Null => break,
            other => panic!("unexpected pop result {other:?}"),
        }
    }
    t.commit().unwrap();
    assert_eq!(count, 4 * 30);

    db.verify_serializable().unwrap();
    db.check_invariants().unwrap();
}
