//! Cross-crate integration: the facade crate, the typed data types, the
//! kernel/database session API and the simulator working together.

use sbcc::prelude::*;
use sbcc::sim::run_averaged;

#[test]
fn prelude_exposes_the_public_api() {
    // Compatibility layer: classification straight from the prelude types.
    let push = StackOp::Push(Value::Int(1));
    let pop = StackOp::Pop;
    assert_eq!(Stack::classify(&push, &pop), Compatibility::Recoverable);
    assert_eq!(Stack::classify(&pop, &push), Compatibility::NonRecoverable);
    assert_eq!(
        TableObject::classify(&TableOp::Size, &TableOp::Size),
        Compatibility::Commutative
    );
    assert!(!sbcc::VERSION.is_empty());
}

#[test]
fn database_round_trip_across_all_data_types() {
    let db = Database::new(SchedulerConfig::default());
    let stack = db.register("stack", Stack::new());
    let set = db.register("set", Set::new());
    let counter = db.register("counter", Counter::new());
    let table = db.register("table", TableObject::new());
    let page = db.register("page", Page::new());
    let queue = db.register("queue", FifoQueue::new());

    // One typed session writing every data type — as a single batched
    // submission (one kernel pass, one lock acquisition).
    let t = db.begin();
    let results = t
        .batch()
        .op(&stack, StackOp::Push(Value::Int(1)))
        .op(&set, SetOp::Insert(Value::Int(2)))
        .op(&counter, CounterOp::Increment(3))
        .op(&table, TableOp::Insert(Value::Int(4), Value::str("four")))
        .op(&page, PageOp::Write(Value::Int(5)))
        .op(&queue, QueueOp::Enqueue(Value::Int(6)))
        .submit()
        .unwrap();
    assert_eq!(results.len(), 6);
    assert!(t.commit().unwrap().is_full_commit());

    let t2 = db.begin();
    assert_eq!(
        t2.exec(&set, SetOp::Member(Value::Int(2))).unwrap(),
        OpResult::Value(Value::Bool(true))
    );
    assert_eq!(
        t2.exec(&counter, CounterOp::Read).unwrap(),
        OpResult::Value(Value::Int(3))
    );
    assert_eq!(
        t2.exec(&table, TableOp::Lookup(Value::Int(4))).unwrap(),
        OpResult::Value(Value::str("four"))
    );
    assert_eq!(
        t2.exec(&page, PageOp::Read).unwrap(),
        OpResult::Value(Value::Int(5))
    );
    assert_eq!(
        t2.exec(&queue, QueueOp::Front).unwrap(),
        OpResult::Value(Value::Int(6))
    );
    assert_eq!(
        t2.exec(&stack, StackOp::Top).unwrap(),
        OpResult::Value(Value::Int(1))
    );
    t2.commit().unwrap();

    db.verify_serializable().unwrap();
    db.verify_commit_dependencies().unwrap();
    db.check_invariants().unwrap();
    let stats = db.stats();
    // One batch pass per *touched shard*: exactly 1 with a single shard,
    // up to 6 when SBCC_SHARDS spreads the six objects across kernels.
    assert!(
        (1..=6).contains(&stats.batches),
        "unexpected batch pass count {}",
        stats.batches
    );
    assert_eq!(stats.batched_calls, 6);
    if db.shard_count() == 1 {
        assert_eq!(stats.batches, 1, "single shard admits the batch in one pass");
    }
}

#[test]
fn kernel_and_dependency_graph_work_through_the_facade() {
    use sbcc::graph::{DependencyGraph, EdgeKind};

    let mut g: DependencyGraph<u32> = DependencyGraph::new();
    g.add_edge(2, 1, EdgeKind::CommitDep);
    assert!(g.would_close_cycle(1, &[2]));

    let mut kernel = SchedulerKernel::new(SchedulerConfig::default());
    let s = kernel.register("s", Stack::new()).unwrap();
    let t1 = kernel.begin();
    let r = kernel
        .request(t1, s, StackOp::Push(Value::Int(1)).to_call())
        .unwrap();
    assert!(r.is_executed());
    // The batch entry point is part of the kernel surface too.
    let t2 = kernel.begin();
    let b = kernel
        .request_batch(
            t2,
            vec![
                BatchCall::new(s, StackOp::Push(Value::Int(2)).to_call()),
                BatchCall::new(s, StackOp::Push(Value::Int(3)).to_call()),
            ],
        )
        .unwrap();
    assert!(b.is_complete());
    assert_eq!(b.commit_deps, vec![t1]);
    assert!(kernel.commit(t2).unwrap().is_pseudo_commit());
    assert!(kernel.commit(t1).unwrap().is_full_commit());
}

#[test]
fn simulator_is_reachable_from_the_facade() {
    let params = SimParams {
        db_size: 60,
        num_terminals: 20,
        mpl_level: 10,
        target_completions: 200,
        seed: 3,
        policy: ConflictPolicy::Recoverability,
        ..SimParams::default()
    };
    let mut sim = Simulator::new(params.clone());
    let result = sim.run();
    assert!(result.completed >= 200);
    assert!(result.throughput > 0.0);

    let agg = run_averaged(&params, 2);
    assert!(agg.throughput.mean > 0.0);
    assert_eq!(agg.runs, 2);
}

#[test]
fn abstract_objects_and_conflict_tables_compose_with_the_database() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(5);
    let table = ConflictTable::random(4, 4, 8, &mut rng);
    assert_eq!(table.count(Compatibility::Commutative), 4);
    assert_eq!(table.count(Compatibility::Recoverable), 8);

    let db = Database::new(SchedulerConfig::default().with_history(false));
    let obj = db
        .register_object("abstract", Box::new(AbstractObject::new(table)))
        .unwrap();
    // Erased objects are driven through `exec_call` on an `ObjectHandle`.
    let t = db.begin();
    let r = t.exec_call(&obj, OpCall::nullary(0)).unwrap();
    assert_eq!(r, OpResult::Ok);
    t.commit().unwrap();
}
