//! Reduced-scale checks that the qualitative claims of the paper's
//! evaluation hold in this reproduction. The full-scale reproduction is the
//! `repro` binary (sbcc-experiments); these tests use small workloads so
//! they stay fast in CI.

use sbcc::prelude::*;

fn small(policy: ConflictPolicy, mpl: usize) -> SimParams {
    SimParams {
        db_size: 200,
        num_terminals: 60,
        mpl_level: mpl,
        target_completions: 1_500,
        seed: 17,
        policy,
        ..SimParams::default()
    }
}

#[test]
fn recoverability_improves_read_write_throughput_under_contention() {
    // The Figure 4 shape: at a contended multiprogramming level, the
    // recoverability scheduler clearly out-performs commutativity.
    let mpl = 40;
    let comm = Simulator::new(small(ConflictPolicy::CommutativityOnly, mpl)).run();
    let rec = Simulator::new(small(ConflictPolicy::Recoverability, mpl)).run();
    assert!(
        rec.throughput > comm.throughput,
        "recoverability {:.1} tps should beat commutativity {:.1} tps",
        rec.throughput,
        comm.throughput
    );
    assert!(
        rec.response_time < comm.response_time,
        "recoverability response time {:.3}s should beat {:.3}s",
        rec.response_time,
        comm.response_time
    );
    // Blocking ratio is lower (Figure 6). The cycle-check-ratio ordering of
    // Figure 7 only emerges below heavy thrashing, which this reduced-scale
    // workload does not guarantee, so here we only check that recoverable
    // executions do pay for extra cycle checks at all.
    assert!(rec.blocking_ratio < comm.blocking_ratio);
    assert!(rec.cycle_check_ratio > 0.0);
    assert!(rec.commit_dependencies > 0);
}

#[test]
fn improvement_shrinks_under_resource_contention() {
    // The Figure 10/11 shape: with scarce resources, transactions queue for
    // hardware rather than data, so the relative gain from recoverability is
    // smaller than with infinite resources.
    let mpl = 40;
    let gain = |mode: ResourceMode| {
        let comm = Simulator::new(small(ConflictPolicy::CommutativityOnly, mpl).with_resources(mode)).run();
        let rec = Simulator::new(small(ConflictPolicy::Recoverability, mpl).with_resources(mode)).run();
        rec.throughput / comm.throughput.max(f64::EPSILON)
    };
    let gain_infinite = gain(ResourceMode::Infinite);
    let gain_one_unit = gain(ResourceMode::Finite { resource_units: 1 });
    assert!(
        gain_infinite >= gain_one_unit * 0.98,
        "infinite-resource gain {gain_infinite:.2}x should be at least the 1-unit gain {gain_one_unit:.2}x"
    );
    assert!(gain_one_unit > 0.9, "recoverability never hurts materially");
}

#[test]
fn adt_model_throughput_grows_with_recoverable_entries() {
    // The Figure 14 shape: more recoverable entries in the compatibility
    // table means fewer conflicts and higher throughput.
    let mpl = 40;
    let run = |p_r: usize| {
        let mut p = small(ConflictPolicy::Recoverability, mpl);
        p.data_model = DataModel::abstract_adt(4, p_r);
        Simulator::new(p).run()
    };
    let pr0 = run(0);
    let pr8 = run(8);
    assert!(
        pr8.throughput > pr0.throughput,
        "Pr=8 throughput {:.1} should beat Pr=0 {:.1}",
        pr8.throughput,
        pr0.throughput
    );
    assert!(pr8.blocking_ratio < pr0.blocking_ratio);
}

#[test]
fn unfair_scheduling_has_higher_peak_throughput() {
    // The Figure 8 observation: without fair scheduling, operations that are
    // compatible with the active set overtake blocked requests, so raw
    // throughput is at least as high as with fair scheduling.
    let mpl = 40;
    let fair = Simulator::new(small(ConflictPolicy::Recoverability, mpl)).run();
    let unfair =
        Simulator::new(small(ConflictPolicy::Recoverability, mpl).with_fair_scheduling(false)).run();
    assert!(
        unfair.throughput >= fair.throughput * 0.95,
        "unfair {:.1} tps should be at least fair {:.1} tps",
        unfair.throughput,
        fair.throughput
    );
}

#[test]
fn papers_policy_ordering_survives_batched_submission() {
    // Batched submission changes how operations reach the kernel (grouped,
    // one classification pass) but not which schedules are admitted — the
    // paper's qualitative claim must therefore hold unchanged: under
    // contention, recoverability beats the commutativity-only baseline.
    let mpl = 40;
    let run = |policy| {
        Simulator::new(small(policy, mpl).with_batch_submission(true)).run()
    };
    let comm = run(ConflictPolicy::CommutativityOnly);
    let rec = run(ConflictPolicy::Recoverability);
    assert!(
        rec.throughput > comm.throughput,
        "batched recoverability {:.1} tps should beat batched commutativity {:.1} tps",
        rec.throughput,
        comm.throughput
    );
    assert!(rec.blocking_ratio < comm.blocking_ratio);
    assert!(rec.commit_dependencies > 0);
}

#[test]
fn pseudo_commits_happen_and_every_completion_is_eventually_durable() {
    let result = Simulator::new(small(ConflictPolicy::Recoverability, 40)).run();
    assert!(
        result.pseudo_commit_completions > 0,
        "under contention some transactions must complete via pseudo-commit"
    );
    assert_eq!(
        result.completed,
        result.pseudo_commit_completions + result.full_commit_completions
    );
    assert!(result.commit_dependencies > 0);
}
