//! # SBCC — Semantics-Based Concurrency Control: Beyond Commutativity
//!
//! A production-quality reproduction of Badrinath & Ramamritham's
//! recoverability-based concurrency control (ICDE 1987 / ACM TODS 1992).
//!
//! This facade crate re-exports the workspace crates so applications can use
//! a single dependency:
//!
//! * [`adt`] — abstract data types, operation semantics, commutativity and
//!   recoverability compatibility tables (paper Tables I–VIII).
//! * [`graph`] — the dependency-graph substrate (wait-for + commit-dependency
//!   edges, cycle and deadlock detection).
//! * [`core`] — the concurrency-control kernel: object managers, the
//!   Figure-2 scheduling algorithm, pseudo-commit / commit protocol,
//!   recovery strategies, a thread-safe [`core::Database`] front-end, and
//!   the async session front-end [`core::aio`] (futures instead of parked
//!   threads: one runtime thread multiplexes thousands of in-flight
//!   transactions — see `examples/async_front_end.rs`).
//! * [`sim`] — the closed-queuing-network simulator and workload generators
//!   used to reproduce the paper's evaluation (Figures 4–18).
//! * [`net`] — the wire-protocol TCP front-end: a [`net::Server`]
//!   multiplexing client connections onto async sessions, and a
//!   blocking/pipelined [`net::NetClient`] (see
//!   `examples/net_client.rs`).
//!
//! `ARCHITECTURE.md` at the repository root maps how these layers fit
//! together (graph → kernel → shard coordinator → sync/async front-ends →
//! sim/experiments) and walks one transaction through
//! admission/blocking/commit, including the cross-shard escalation path
//! and pseudo-commit votes.
//!
//! ## Quickstart
//!
//! ```
//! use sbcc::core::{Database, SchedulerConfig, ConflictPolicy};
//! use sbcc::adt::{Stack, StackOp, Value};
//!
//! let db = Database::new(SchedulerConfig::default().with_policy(ConflictPolicy::Recoverability));
//! let s = db.register("jobs", Stack::new());
//!
//! let t1 = db.begin();
//! let t2 = db.begin();
//! let id2 = t2.id();
//! // Two pushes do not commute, but push is recoverable relative to push:
//! // both execute immediately; t2 merely acquires a commit dependency on t1.
//! t1.exec(&s, StackOp::Push(Value::Int(4))).unwrap();
//! t2.exec(&s, StackOp::Push(Value::Int(2))).unwrap();
//! let o2 = t2.commit().unwrap();
//! assert!(o2.is_pseudo_commit()); // t2 must wait for t1 to terminate
//! let o1 = t1.commit().unwrap();
//! assert!(o1.is_full_commit());
//! assert!(db.outcome_of(id2).unwrap().is_full_commit()); // cascaded
//!
//! // Or let the database drive the session: `run` begins a transaction,
//! // commits on success and retries on scheduler-initiated aborts.
//! let top = db.run(|txn| txn.exec(&s, StackOp::Top)).unwrap();
//! assert_eq!(top, sbcc::adt::OpResult::Value(Value::Int(2)));
//! ```

pub use sbcc_adt as adt;
pub use sbcc_core as core;
pub use sbcc_graph as graph;
pub use sbcc_net as net;
pub use sbcc_sim as sim;

/// Version of the SBCC workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Convenience prelude bringing the most commonly used items into scope.
pub mod prelude {
    pub use crate::adt::{
        AbstractObject, AdtObject, AdtOp, AdtSpec, Compatibility, CompatibilityTable,
        ConflictTable, Counter, CounterOp, FifoQueue, OpCall, OpResult, Page, PageOp, QueueOp,
        Set, SetOp, Stack, StackOp, TableEntry, TableObject, TableOp, Value,
    };
    pub use crate::core::{
        AbortReason, AsyncBatch, AsyncDatabase, AsyncTransaction, Batch, BatchCall, BatchOutcome,
        BatchStop, CommitOutcome, ConflictPolicy, CoreError, Database, DatabaseConfig, Handle,
        KernelEvent, KernelStats, LocalExecutor, ObjectHandle, ObjectId, RecoveryStrategy,
        RequestOutcome, SchedulerConfig, SchedulerKernel, ShardCount, ShardedKernel,
        StatsSnapshot, Transaction, TxnId, TxnState, VictimPolicy,
    };
    pub use crate::graph::{DependencyGraph, EdgeKind};
    pub use crate::sim::{DataModel, ResourceMode, SimParams, SimulationResult, Simulator};
}
